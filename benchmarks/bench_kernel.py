"""EXP-K benchmark: kernel throughput before/after the decomposition.

Measures simulated-µs-per-wall-second of the composable kernel on the
shared 32-cell campaign grid (and one long CNC cell) in four
configurations — traced/no-trace × serial/``run_many(jobs=4)`` — and
compares each against the committed pre-refactor monolith numbers in
``out/kernel_baseline.json`` (captured by ``baseline_capture.py`` on the
same container before the refactor landed).

The headline metric is ``campaign_sweep_speedup``: the no-trace recorder
plus the parallel campaign executor against the pre-refactor traced
serial campaign.  The parallel axis contributes only with >1 CPU core;
``cpu_count`` is recorded next to every run so single-core numbers are
interpretable (there the speedup is the kernel + no-trace share alone).
All before/after ratios are clock-normalized through the
:func:`baseline_capture.calibrate` probe, so an oscillating container
clock cannot fake a speedup or hide one.

Bit-identity cross-check: every configuration must complete exactly the
job counts the pre-refactor engine recorded in the baseline.
"""

import json
import os
import time

from baseline_capture import (
    CAMPAIGN_BCET_RATIO,
    CAMPAIGN_DURATION,
    OUT_PATH as BASELINE_PATH,
    calibrate,
    campaign_cells,
    time_campaign_serial,
    time_single_cell,
)


def time_campaign_parallel(jobs: int = 4) -> dict:
    """Wall time of the 32-cell campaign through ``run_many(jobs=N)``."""
    from repro.experiments.runner import RunSpec, run_many
    from repro.tasks.generation import GaussianModel
    from repro.workloads.registry import get_workload

    specs = []
    for policy, workload, seed in campaign_cells():
        taskset = (
            get_workload(workload).prioritized().with_bcet_ratio(CAMPAIGN_BCET_RATIO)
        )
        specs.append(
            RunSpec(
                taskset=taskset,
                scheduler=policy,
                seed=seed,
                execution_model=GaussianModel(),
                duration=CAMPAIGN_DURATION,
                on_miss="record",
                record_trace=False,
            )
        )
    t0 = time.perf_counter()
    results = run_many(specs, jobs=jobs)
    wall = time.perf_counter() - t0
    simulated = CAMPAIGN_DURATION * len(specs)
    return {
        "wall_s": wall,
        "cells": len(specs),
        "jobs": jobs,
        "simulated_us": simulated,
        "simulated_us_per_wall_s": simulated / wall,
        "jobs_completed": sum(r.jobs_completed for r in results),
        "record_trace": False,
    }


def _row(label: str, m: dict) -> str:
    return (
        f"{label:<38} {m['wall_s']:>8.3f} s "
        f"{m['simulated_us_per_wall_s'] / 1e6:>8.2f} M-µs/s"
    )


def test_kernel_throughput(artifact, metrics_out):
    """Before/after throughput matrix for the decomposed kernel."""
    baseline = json.loads(BASELINE_PATH.read_text())
    cores = os.cpu_count() or 1

    # The container's CPU clock drifts by tens of percent between runs;
    # rescale the stored baseline walls to the current clock so the
    # before/after ratios measure the code, not the frequency governor.
    clock_scale = baseline["calibration_ops_per_s"] / calibrate()

    single_untraced = time_single_cell(record_trace=False)
    single_traced = time_single_cell(record_trace=True)
    campaign_traced = time_campaign_serial(record_trace=True)
    campaign_untraced = time_campaign_serial(record_trace=False)
    campaign_parallel = time_campaign_parallel(jobs=4)

    # Bit-identity: the decomposed kernel must replay the monolith's runs
    # job-for-job (the golden-trace suite pins the full traces; this pins
    # the live benchmark configurations against the committed baseline).
    assert (
        single_untraced["jobs_completed"]
        == baseline["single_cell_untraced"]["jobs_completed"]
    )
    assert (
        campaign_untraced["jobs_completed"]
        == baseline["campaign_serial_untraced"]["jobs_completed"]
    )
    assert campaign_parallel["jobs_completed"] == campaign_untraced["jobs_completed"]

    def speedup(now: dict, then: dict) -> float:
        # Identical simulated_us on both sides, so the wall ratio is the
        # throughput ratio; clock_scale converts the baseline wall to
        # what the monolith would take on the current clock.
        return then["wall_s"] * clock_scale / now["wall_s"]

    single_speedup = speedup(single_untraced, baseline["single_cell_untraced"])
    single_traced_speedup = speedup(single_traced, baseline["single_cell_traced"])
    campaign_kernel_speedup = speedup(
        campaign_untraced, baseline["campaign_serial_untraced"]
    )
    # Acceptance configuration: no-trace recorder + parallel executor vs
    # the pre-refactor traced serial campaign.
    campaign_sweep_speedup = speedup(
        campaign_parallel, baseline["campaign_serial_traced"]
    )
    notrace_speedup = campaign_traced["wall_s"] / campaign_untraced["wall_s"]
    parallel_speedup = campaign_untraced["wall_s"] / campaign_parallel["wall_s"]

    lines = [
        "EXP-K: kernel throughput (simulated µs per wall-clock second)",
        f"baseline: {baseline['label']}  |  cpu_count: {cores}"
        f"  |  clock scale vs capture: {1.0 / clock_scale:.2f}x",
        "",
        _row("single cell, traced", single_traced),
        _row("single cell, no-trace", single_untraced),
        _row("32-cell campaign, traced serial", campaign_traced),
        _row("32-cell campaign, no-trace serial", campaign_untraced),
        _row("32-cell campaign, no-trace jobs=4", campaign_parallel),
        "",
        f"single-cell kernel speedup (no-trace):      {single_speedup:.2f}x",
        f"single-cell kernel speedup (traced):        {single_traced_speedup:.2f}x",
        f"campaign kernel speedup (like-for-like):    {campaign_kernel_speedup:.2f}x",
        f"no-trace recorder vs traced (this kernel):  {notrace_speedup:.2f}x",
        f"parallel executor vs serial ({cores} core(s)):   {parallel_speedup:.2f}x",
        f"campaign sweep speedup (no-trace + jobs=4"
        f" vs pre-refactor traced serial):            {campaign_sweep_speedup:.2f}x",
    ]
    artifact("kernel_throughput", "\n".join(lines))

    add = metrics_out
    add("cpu_count", cores, "cores")
    add(
        "single_cell_untraced_per_wall_s",
        round(single_untraced["simulated_us_per_wall_s"], 1),
        "simulated µs per wall-clock s",
    )
    add(
        "campaign_untraced_serial_per_wall_s",
        round(campaign_untraced["simulated_us_per_wall_s"], 1),
        "simulated µs per wall-clock s",
    )
    add(
        "campaign_untraced_parallel_per_wall_s",
        round(campaign_parallel["simulated_us_per_wall_s"], 1),
        "simulated µs per wall-clock s",
    )
    add("clock_scale_vs_capture", round(1.0 / clock_scale, 4), "ratio")
    add("single_cell_kernel_speedup", round(single_speedup, 3), "x")
    add("campaign_kernel_speedup", round(campaign_kernel_speedup, 3), "x")
    add("notrace_recorder_speedup", round(notrace_speedup, 3), "x")
    add("parallel_executor_speedup", round(parallel_speedup, 3), "x")
    add("campaign_sweep_speedup", round(campaign_sweep_speedup, 3), "x")

    # Clock-normalized gates: the decomposed kernel must clearly beat the
    # monolith like-for-like, and the sweep configuration (no-trace +
    # parallel executor) must beat the pre-refactor traced serial
    # campaign by ~2x (it measures 2.2x on one core; more with the
    # parallel axis on multicore).  Gates sit below the measured values
    # to absorb residual calibration noise.
    assert campaign_kernel_speedup > 1.4
    assert campaign_sweep_speedup > 1.7
