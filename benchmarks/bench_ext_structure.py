"""EXP-A8 benchmark: utilisation-structure study (§4's INS explanation).

At matched total utilisation, a workload dominated by one high-rate task
(the INS archetype) gains more from LPFPS than one with evenly spread
utilisation — because its run queue is empty for most of the heavy task's
execution, which is exactly when the lone-task slow-down hook fires.
"""

from repro.experiments.structure import run_structure_study


def test_structure_study(benchmark, artifact):
    """Reduction vs FPS across three structural families and three loads."""
    result = benchmark.pedantic(
        lambda: run_structure_study(seeds=(1, 2)), rounds=1, iterations=1
    )
    artifact("ext_structure", result.render())

    for name, values in result.reductions.items():
        # Positive gain everywhere...
        assert all(v > 0 for v in values), name
        # ...shrinking as total utilisation grows (less reclaimable slack).
        assert list(values) == sorted(values, reverse=True), name
    # The paper's INS explanation: concentration of utilisation in one
    # high-rate task beats an even spread at matched load.
    for i, u in enumerate(result.utilizations):
        if u >= 0.5:
            assert (
                result.reductions["heavy+light"][i]
                > result.reductions["uniform"][i]
            )
    benchmark.extra_info["heavy_at_u07_pct"] = round(
        100 * result.reduction_of("heavy+light", 0.7), 1
    )
    benchmark.extra_info["uniform_at_u07_pct"] = round(
        100 * result.reduction_of("uniform", 0.7), 1
    )
