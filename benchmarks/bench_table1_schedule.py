"""EXP-T1 benchmark: replay Table 1 / Figure 2 and verify the narrative."""

from repro.experiments.table1_schedule import run_table1


def test_table1_schedule(benchmark, artifact):
    """Replay the motivating schedules under FPS and LPFPS."""
    result = benchmark(run_table1)
    artifact("table1_figure2", result.render())
    failed = [name for name, ok in result.checks if not ok]
    assert not failed, f"unreproduced paper events: {failed}"
    benchmark.extra_info["checkpoints"] = len(result.checks)
    benchmark.extra_info["fps_avg_power"] = round(result.fps.average_power, 4)
    benchmark.extra_info["lpfps_avg_power"] = round(
        result.lpfps.average_power, 4
    )
