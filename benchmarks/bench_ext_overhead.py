"""EXP-A5 benchmark: the §5 heuristic-vs-optimal scheduler-cost trade-off.

"We can use the optimal solution at the cost of increased execution time
and power consumption of the scheduler; this approach needs a trade-off
analysis, which is included in our future work."  — this bench performs it.
"""

from repro.experiments.extensions import run_overhead_tradeoff


def test_overhead_tradeoff(benchmark, artifact):
    """Sweep per-invocation scheduler cost on CNC with both policies."""
    result = benchmark.pedantic(
        lambda: run_overhead_tradeoff(
            application="cnc",
            overheads=(0.0, 0.5, 1.0, 2.0, 5.0),
            optimal_extra_cost=1.0,
            seeds=(1, 2),
        ),
        rounds=1, iterations=1,
    )
    artifact("ext_overhead_tradeoff", result.render())

    # Power rises monotonically with the charged overhead for both.
    heu = [p.heuristic_power for p in result.points]
    opt = [p.optimal_power for p in result.points]
    assert heu == sorted(heu)
    assert opt == sorted(opt)
    # The optimal policy's per-invocation surcharge is visible at every
    # base overhead (same invocation pattern, strictly more charged time).
    for p in result.points:
        assert p.optimal_power > 0
    # Hard deadlines hold across the sweep on this slack-rich workload.
    assert all(p.heuristic_misses == 0 and p.optimal_misses == 0
               for p in result.points)
    cross = result.crossover()
    benchmark.extra_info["crossover_overhead_us"] = (
        cross if cross is not None else "never"
    )
