"""Robustness benchmarks: guard efficacy and policy fault dose-response.

The tentpole claims of the fault-injection subsystem, checked end to end:
guarded LPFPS strictly beats unguarded LPFPS at every informative overrun
intensity, guards cost nothing on a fault-free run, and a seeded campaign
is bit-identical on repetition.
"""

import pytest

from repro.experiments.robustness import (
    STRESS_INTENSITIES,
    run_robustness_campaign,
    run_robustness_sweep,
)


@pytest.mark.faults
def test_guard_efficacy_sweep(benchmark, artifact):
    """Guarded vs unguarded LPFPS under targeted WCET overruns."""
    result = benchmark.pedantic(run_robustness_sweep, rounds=1, iterations=1)
    artifact("robustness_guard_efficacy", result.render())

    # Guards strictly lower the miss rate at every nonzero intensity swept.
    for point in result.points:
        if point.intensity > 0:
            assert point.guarded_miss_rate < point.unguarded_miss_rate, (
                f"guards did not strictly win at intensity {point.intensity}"
            )
            assert point.guard_activations > 0
    # ... and are inert when nothing goes wrong: fault-free energy within 1 %.
    assert abs(result.fault_free_energy_delta_pct) < 1.0
    base = result.point(0.0)
    assert base.unguarded_misses == 0 and base.guarded_misses == 0

    benchmark.extra_info["intensities"] = list(STRESS_INTENSITIES)
    benchmark.extra_info["fault_free_dE_pct"] = round(
        result.fault_free_energy_delta_pct, 6
    )


@pytest.mark.faults
def test_policy_dose_response(benchmark, artifact):
    """FPS / static DVS / ccEDF / LPFPS degradation on INS overruns."""
    campaigns = benchmark.pedantic(
        lambda: run_robustness_campaign(
            application="ins", intensities=(0.0, 0.2), seeds=(1, 2)
        ),
        rounds=1, iterations=1,
    )
    artifact(
        "robustness_dose_response_ins",
        "\n\n".join(c.render() for c in campaigns),
    )

    control, faulted = campaigns
    # The zero-intensity campaign is a pure control: every cell matches its
    # own fault-free baseline exactly.
    for out in control.outcomes:
        assert out.misses == 0
        assert out.fault_count == 0
        assert out.power == pytest.approx(out.baseline_power, abs=0.0)
    # At nonzero intensity faults were actually injected everywhere, and
    # full-speed FPS shrugs off overruns that the DVS policies feel.
    for out in faulted.outcomes:
        assert out.fault_count > 0
    fps = faulted.outcome("fps", guarded=False)
    lpfps = faulted.outcome("lpfps", guarded=False)
    assert fps.miss_rate <= lpfps.miss_rate
    benchmark.extra_info["lpfps_missrate"] = round(lpfps.miss_rate, 6)


@pytest.mark.faults
def test_campaign_bit_identical(artifact):
    """Repeating a seeded campaign renders byte-for-byte the same report."""
    first = run_robustness_sweep(intensities=(0.0, 0.35), seeds=(1, 2))
    second = run_robustness_sweep(intensities=(0.0, 0.35), seeds=(1, 2))
    assert first.render() == second.render()
    assert first == second
    artifact("robustness_determinism", first.render())
