"""EXP-R2 benchmark: kill → restart → resume loses nothing, recomputes little.

A 30-cell campaign journals into a checkpoint directory while a poison
cell SIGKILLs the campaign process at ~93% completion — the crash a
preempted spot instance or OOM kill delivers.  A second process resumes
from the journal.  The acceptance gates from DESIGN.md §5e:

* zero results lost: every cell's resumed result is bit-identical to an
  uninterrupted serial run;
* cheap resume: strictly fewer than 10% of cells are recomputed.

Both campaign runs happen in real subprocesses (the kill must take down
a genuine process, and resume must start from a cold interpreter with
only the journal to go on).
"""

import json
import os
import signal
import subprocess
import sys
import textwrap
from pathlib import Path

from repro.experiments.checkpoint import CheckpointJournal
from repro.experiments.runner import RunSpec, run_many
from repro.tasks.generation import GaussianModel
from repro.workloads.registry import get_workload

CELLS = 30
KILL_AT = 28  # cells 0..27 journaled (93%), cells 28-29 recomputed (6.7%)

DRIVER = textwrap.dedent(
    """
    import json, sys
    from repro.experiments.runner import RunSpec, run_many
    from repro.faults.chaos import kill_worker, with_chaos
    from repro.tasks.generation import GaussianModel
    from repro.workloads.registry import get_workload

    checkpoint, kill_at = sys.argv[1], int(sys.argv[2])
    taskset = get_workload("cnc").prioritized()
    specs = [
        RunSpec(taskset=taskset, scheduler="lpfps", seed=s,
                execution_model=GaussianModel(), duration=9_600.0)
        for s in range(1, {cells} + 1)
    ]
    if kill_at >= 0:
        specs[kill_at] = with_chaos(specs[kill_at], kill_worker())
    results = run_many(specs, jobs=1, checkpoint=checkpoint)
    print(json.dumps([
        {{"sig": [repr(r.energy.total), repr(r.average_power),
                  r.jobs_completed, r.context_switches],
          "checkpoint": r.metadata.get("checkpoint")}}
        for r in results
    ]))
    """
).format(cells=CELLS)


def _reference_sigs():
    taskset = get_workload("cnc").prioritized()
    specs = [
        RunSpec(taskset=taskset, scheduler="lpfps", seed=s,
                execution_model=GaussianModel(), duration=9_600.0)
        for s in range(1, CELLS + 1)
    ]
    return [
        [repr(r.energy.total), repr(r.average_power),
         r.jobs_completed, r.context_switches]
        for r in run_many(specs, jobs=1)
    ]


def _run_driver(tmp_path, checkpoint, kill_at):
    driver = tmp_path / "driver.py"
    driver.write_text(DRIVER)
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parent.parent / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, str(driver), str(checkpoint), str(kill_at)],
        capture_output=True, text=True, env=env, timeout=300,
    )


def test_kill_restart_resume(tmp_path, artifact, metrics_out):
    checkpoint = tmp_path / "journal"

    # Phase 1: the campaign dies mid-run (SIGKILL from inside cell 28).
    crashed = _run_driver(tmp_path, checkpoint, KILL_AT)
    assert crashed.returncode in (-signal.SIGKILL, 128 + signal.SIGKILL), (
        crashed.returncode, crashed.stderr
    )
    journaled = len(CheckpointJournal(checkpoint))
    assert journaled == KILL_AT  # every cell before the kill is durable

    # Phase 2: a cold process resumes from the journal alone.
    resumed = _run_driver(tmp_path, checkpoint, -1)
    assert resumed.returncode == 0, resumed.stderr
    cells = json.loads(resumed.stdout)
    assert len(cells) == CELLS

    hits = sum(1 for c in cells if c["checkpoint"] == "hit")
    recomputed = sum(1 for c in cells if c["checkpoint"] == "stored")
    recompute_fraction = recomputed / CELLS
    assert hits == KILL_AT
    assert hits + recomputed == CELLS          # zero results lost
    assert recompute_fraction < 0.10           # the resume-cost gate

    # Zero-loss means bit-identity, not just presence: every resumed
    # cell matches an uninterrupted serial run of the same campaign.
    reference = _reference_sigs()
    assert [c["sig"] for c in cells] == reference

    metrics_out("cells_total", CELLS)
    metrics_out("cells_journaled_at_crash", journaled)
    metrics_out("cells_recomputed", recomputed)
    metrics_out("recompute_pct", round(100.0 * recompute_fraction, 2))
    artifact(
        "resilience_kill_resume",
        "\n".join(
            [
                "EXP-R2: kill -> restart -> resume",
                f"cells:                {CELLS}",
                f"journaled at crash:   {journaled}",
                f"recomputed on resume: {recomputed} "
                f"({100.0 * recompute_fraction:.1f}%)",
                "bit-identity vs uninterrupted serial run: OK",
            ]
        ),
    )
