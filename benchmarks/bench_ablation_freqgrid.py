"""EXP-A3 benchmark: frequency-grid granularity (paper line L18).

The paper's processor steps its clock in 1 MHz increments and always rounds
the requested frequency up.  Coarser grids round up further, costing power;
this bench quantifies how much of the ideal (continuous) saving each
granularity retains.
"""

from repro.experiments.ablations import run_frequency_grid_ablation


def test_frequency_grid_ablation(benchmark, artifact):
    """LPFPS on INS across grid steps from continuous to 50 MHz."""
    result = benchmark.pedantic(
        lambda: run_frequency_grid_ablation(application="ins", seeds=(1, 2)),
        rounds=1, iterations=1,
    )
    artifact("ablation_freqgrid", result.render())

    by_label = {row[0]: row[1] for row in result.rows}
    continuous = by_label["continuous"]
    round_up = [
        (label, power) for label, power in by_label.items()
        if label.endswith("round-up")
    ]
    # Coarser grids are monotonically (weakly) worse under round-up.
    powers = [continuous] + [p for _, p in round_up]
    for earlier, later in zip(powers, powers[1:]):
        assert earlier <= later + 1e-6
    # The paper's 1 MHz grid is nearly ideal on INS.
    assert by_label["step=1 MHz, round-up"] <= continuous * 1.02
    # Ishihara-Yasuura dual-level quantisation recovers most of the
    # coarse-grid loss (paper ref. [16]).
    coarse_up = by_label["step=25 MHz, round-up"]
    coarse_dual = by_label["step=25 MHz, dual-level"]
    assert coarse_dual < coarse_up
    assert coarse_dual - continuous < 0.4 * (coarse_up - continuous)
    # Deadlines hold at every granularity and in both quantisation modes.
    assert all(row[3] == 0 for row in result.rows)
    benchmark.extra_info["continuous_power"] = round(continuous, 4)
    benchmark.extra_info["coarse_roundup_power"] = round(coarse_up, 4)
    benchmark.extra_info["coarse_dual_power"] = round(coarse_dual, 4)
