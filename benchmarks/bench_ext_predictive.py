"""EXP-A7 benchmark: predictive interval DVS misses hard deadlines (§2.2).

"Because latency exists when the prediction fails, these methods cannot be
applied to real-time systems" — measured: on bursty demand the PAST policy
saves power over FPS while missing deadlines; LPFPS matches its power with
zero misses.
"""

from repro.experiments.extensions import run_predictive_failure


def test_predictive_failure(benchmark, artifact):
    """PAST vs FPS vs LPFPS on INS with bimodal (bursty) demand."""
    result = benchmark.pedantic(
        lambda: run_predictive_failure(application="ins", seed=1),
        rounds=1, iterations=1,
    )
    artifact("ext_predictive_failure", result.render())

    assert result.past_power < result.fps_power       # it does save power...
    assert result.past_misses > 0                     # ...by missing deadlines
    assert result.lpfps_misses == 0                   # LPFPS never does
    assert result.lpfps_power < result.fps_power
    benchmark.extra_info["past_misses"] = result.past_misses
    benchmark.extra_info["past_power"] = round(result.past_power, 4)
    benchmark.extra_info["lpfps_power"] = round(result.lpfps_power, 4)
