"""Smoke tests for ``lpfps serve`` / ``lpfps query``.

The serve tests boot the real CLI in a subprocess (the signal path
cannot be exercised in-process), wait for the announce line, issue one
HTTP query, then deliver SIGTERM and assert a clean, prompt, orphanless
shutdown — the failure mode being guarded is a hung process or leaked
pool workers holding the port.
"""

from __future__ import annotations

import json
import os
import pathlib
import signal
import subprocess
import sys
import time
import urllib.request

import pytest

from repro.cli import main

REPO = pathlib.Path(__file__).resolve().parent.parent
QUERY = {"kind": "energy", "app": "example", "duration": 400.0}


@pytest.fixture()
def server():
    env = dict(os.environ, PYTHONPATH=str(REPO / "src"), PYTHONUNBUFFERED="1")
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", "--port", "0", "--jobs", "1"],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    try:
        announce = process.stdout.readline()
        assert "serving on http://" in announce, announce
        url = announce.strip().rsplit(" ", 1)[-1]
        yield process, url
    finally:
        if process.poll() is None:
            process.kill()
        process.wait(timeout=10)


def _post(url: str, request: dict, timeout: float = 60.0) -> dict:
    http_request = urllib.request.Request(
        url + "/v1/query",
        data=json.dumps(request).encode(),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(http_request, timeout=timeout) as response:
        assert response.status == 200
        return json.loads(response.read().decode())


class TestServe:
    def test_boots_answers_and_stops_on_sigterm(self, server):
        process, url = server

        with urllib.request.urlopen(url + "/v1/health", timeout=30) as response:
            assert response.status == 200

        payload = _post(url, QUERY)
        assert payload["ok"] is True
        assert payload["average_power"] > 0

        process.send_signal(signal.SIGTERM)
        assert process.wait(timeout=30) == 0
        output = process.stdout.read()
        assert "shutdown complete" in output

    def test_no_orphaned_workers_after_shutdown(self, server):
        process, url = server
        _post(url, QUERY)  # force at least one dispatch through the pool
        process.send_signal(signal.SIGTERM)
        assert process.wait(timeout=30) == 0
        # The server was the process-group leader of nothing: any worker
        # it spawned must be gone once it exits.
        orphans = subprocess.run(
            ["ps", "--ppid", str(process.pid), "-o", "pid="],
            capture_output=True,
            text=True,
        ).stdout.strip()
        assert orphans == ""

    def test_sigint_also_exits_cleanly(self, server):
        process, _ = server
        process.send_signal(signal.SIGINT)
        assert process.wait(timeout=30) == 0

    def test_sigterm_drains_in_flight_query(self, server):
        """Graceful drain: SIGTERM mid-query lets the answer land.

        A ~2 s simulation is in flight when SIGTERM arrives; the
        contract is (a) that request still completes with its answer,
        (b) the listener stops taking new connections while it drains,
        (c) the process then exits 0.
        """
        import threading

        process, url = server
        slow = {"kind": "energy", "app": "cnc", "duration": 30_000_000.0}
        answers = []
        worker = threading.Thread(
            target=lambda: answers.append(_post(url, slow, timeout=120.0))
        )
        worker.start()
        time.sleep(0.5)  # let the query reach the broker
        process.send_signal(signal.SIGTERM)

        # The listening socket closes before the drain wait: new
        # connections are refused while the old request finishes.
        refused = False
        for _ in range(100):
            try:
                urllib.request.urlopen(url + "/v1/health", timeout=1)
            except OSError:
                refused = True
                break
            time.sleep(0.05)
        assert refused, "listener kept accepting during drain"

        worker.join(timeout=60)
        assert not worker.is_alive()
        assert answers and answers[0]["ok"] is True
        assert answers[0]["average_power"] > 0

        assert process.wait(timeout=30) == 0
        output = process.stdout.read()
        assert "draining" in output
        assert "shutdown complete" in output


class TestQueryCommand:
    def test_in_process_query(self, capsys):
        assert main([
            "query", "--kind", "energy", "--app", "example",
            "--duration", "400", "--jobs", "1",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert payload["scheduler"] == "lpfps"

    def test_schedulability_query(self, capsys):
        assert main(["query", "--kind", "schedulability", "--app", "cnc"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schedulable"] is True

    def test_query_against_live_server(self, server, capsys):
        _, url = server
        assert main([
            "query", "--kind", "rta", "--app", "ins", "--url", url,
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True

    def test_cache_dir_makes_second_call_a_disk_hit(self, tmp_path, capsys):
        argv = [
            "query", "--kind", "energy", "--app", "example",
            "--duration", "400", "--cache-dir", str(tmp_path / "cache"),
            "--jobs", "1",
        ]
        assert main(argv) == 0
        first = json.loads(capsys.readouterr().out)
        assert main(argv) == 0
        second = json.loads(capsys.readouterr().out)
        assert first == second
