"""Fast-path x faults differential safety (ISSUE 10 satellite S2).

The fast-forward kernel skips steady-state hyperperiods, which is only
sound for deterministic, fault-free cells.  Every bundled scenario pack
attaches a fault layer (even an inert one carries guards) and most use
stochastic execution models — so under ``execution="fast"`` every pack
cell must demote itself to the exact path and stamp its provenance.
A positive control proves the gate is selective, not broken-open.
"""

from __future__ import annotations

import pytest

from repro.experiments.runner import RunSpec
from repro.scenarios import available_packs, load_pack
from repro.scenarios.runner import run_scenario
from repro.tasks.generation import WcetModel
from repro.workloads.registry import get_workload


@pytest.mark.parametrize("pack", available_packs())
def test_pack_cells_never_fast_forward(pack):
    scenario = load_pack(pack)
    events = []
    report = run_scenario(
        scenario, jobs=1, progress=events.append, execution="fast"
    )
    assert len(events) == len(report.cells)
    for event in events:
        assert event["ok"], event
        # Demoted, with provenance: the fault layer (and for stochastic
        # packs the RNG model too) makes fast-forwarding unsound.
        assert event["execution_path"] == "exact-fallback", event


def test_eligible_cell_does_fast_forward():
    # Positive control: without the scenario fault layer the same knob
    # genuinely fast-forwards — the pack test above is not vacuous.
    taskset = get_workload("cnc").prioritized().with_bcet_ratio(0.5)
    result = RunSpec(
        taskset=taskset,
        scheduler="fps",
        seed=1,
        execution_model=WcetModel(),
        duration=72_000.0,
        on_miss="record",
        execution="fast",
    ).run()
    assert result.metadata["execution_path"] == "fast-forward"


def test_fast_campaign_matches_exact_verdicts():
    # Differential leg: for every pack the fast knob must change only
    # the kernel path provenance, never a verdict (it demoted itself).
    for pack in available_packs():
        scenario = load_pack(pack)
        exact = run_scenario(scenario, jobs=1, execution="exact")
        fast = run_scenario(scenario, jobs=1, execution="fast")
        for a, b in zip(exact.cells, fast.cells):
            assert a.failed == b.failed
            if not a.failed:
                assert a.result.average_power == b.result.average_power
            assert a.violations == b.violations
