"""The bundled pack library: every pack valid, addressable, round-trippable."""

import json

import pytest

from repro.analysis.weakly_hard import jcl_schedulability
from repro.errors import ConfigurationError
from repro.scenarios import (
    PACKS_DIR,
    available_packs,
    load_pack,
    pack_path,
    parse_scenario,
)

EXPECTED_PACKS = {
    "automotive",
    "avionics",
    "bursty_server",
    "cnc",
    "ins",
    "sensor_hub",
    "weakly_hard",
}


class TestLibrary:
    def test_expected_packs_present(self):
        assert EXPECTED_PACKS <= set(available_packs())

    def test_unknown_pack_lists_available(self):
        with pytest.raises(ConfigurationError, match="available: .*weakly_hard"):
            load_pack("nope")

    def test_pack_path_points_into_the_library(self):
        path = pack_path("cnc")
        assert path.parent == PACKS_DIR
        assert json.loads(path.read_text())["name"] == "cnc"

    @pytest.mark.parametrize("name", sorted(EXPECTED_PACKS))
    def test_pack_parses_and_round_trips(self, name):
        scenario = load_pack(name)
        assert scenario.name == name
        assert scenario.pack == name
        fingerprint = scenario.fingerprint()
        reparsed = parse_scenario(scenario.canonical_document())
        assert reparsed.fingerprint() == fingerprint

    def test_weakly_hard_packs_are_jcl_schedulable(self):
        for name in sorted(EXPECTED_PACKS):
            scenario = load_pack(name)
            if not scenario.constraints:
                continue
            verdict = jcl_schedulability(scenario.taskset, scenario.constraints)
            assert verdict.schedulable, f"{name}: {verdict.reason}"

    def test_automotive_pack_declares_milliseconds(self):
        """The ms pack exercises time-unit scaling end to end."""
        document = json.loads(pack_path("automotive").read_text())
        assert document["time_unit"] == "ms"
        scenario = load_pack("automotive")
        # normalised to µs: every period is >= 1000 (declared >= 1 ms)
        assert all(task.period >= 1_000.0 for task in scenario.taskset)

    def test_weakly_hard_pack_is_hard_infeasible(self):
        """The EXP-W pack must overload the processor as a hard workload."""
        scenario = load_pack("weakly_hard")
        assert scenario.taskset.utilization > 1.0
        assert scenario.constraints
        assert {"fps", "jcl"} <= set(scenario.campaign.schedulers)
