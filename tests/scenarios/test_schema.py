"""Scenario schema: strict validation, normalisation, fingerprinting.

Every rejection must name the offending field path — that is the
contract the service's 400 responses and the CLI's validate subcommand
surface to users — and the canonical document must round-trip to an
identical fingerprint (the property the CI ``scenario check`` job pins
across the whole pack library).
"""

import copy

import pytest

from repro.analysis.weakly_hard import WeaklyHard
from repro.errors import ConfigurationError
from repro.scenarios import SCHEMA_ID, load_scenario, parse_scenario
from repro.service.fingerprint import taskset_fingerprint


def _doc(**overrides):
    document = {
        "schema": SCHEMA_ID,
        "name": "unit",
        "tasks": [
            {"name": "a", "wcet": 100.0, "period": 400.0},
            {"name": "b", "wcet": 100.0, "period": 800.0},
        ],
    }
    document.update(overrides)
    return document


class TestValidation:
    def test_minimal_document_parses_with_defaults(self):
        scenario = parse_scenario(_doc())
        assert scenario.name == "unit"
        assert scenario.processor_name == "arm8"
        assert scenario.execution["model"] == "gaussian"
        assert scenario.campaign.schedulers == ("fps",)
        assert scenario.campaign.seeds == (1,)
        # default horizon: one hyperperiod
        assert scenario.campaign.duration == scenario.taskset.hyperperiod
        # rate-monotonic priorities were assigned
        assert all(task.priority is not None for task in scenario.taskset)

    def test_unknown_top_level_key_names_the_path(self):
        with pytest.raises(ConfigurationError, match=r"^wat: unknown key"):
            parse_scenario(_doc(wat=1))

    def test_unknown_task_key_names_the_indexed_path(self):
        document = _doc()
        document["tasks"][1]["wcett"] = 3
        with pytest.raises(
            ConfigurationError, match=r"^tasks\[1\]\.wcett: unknown key"
        ):
            parse_scenario(document)

    def test_wrong_schema_id(self):
        with pytest.raises(ConfigurationError, match="schema: expected"):
            parse_scenario(_doc(schema="repro/scenario/v0"))

    def test_name_must_be_a_slug(self):
        with pytest.raises(ConfigurationError, match="name: expected a slug"):
            parse_scenario(_doc(name="No Spaces"))

    def test_bool_is_not_a_number(self):
        document = _doc()
        document["tasks"][0]["wcet"] = True
        with pytest.raises(
            ConfigurationError, match=r"tasks\[0\]\.wcet: expected a number"
        ):
            parse_scenario(document)

    def test_unknown_scheduler_is_rejected_with_the_available_list(self):
        document = _doc(campaign={"schedulers": ["fps", "nope"]})
        with pytest.raises(
            ConfigurationError,
            match=r"campaign\.schedulers\[1\]: unknown scheduler 'nope'",
        ):
            parse_scenario(document)

    def test_duplicate_schedulers_rejected(self):
        document = _doc(campaign={"schedulers": ["fps", "FPS"]})
        with pytest.raises(ConfigurationError, match="duplicate entries"):
            parse_scenario(document)

    def test_duration_and_hyperperiods_are_exclusive(self):
        document = _doc(campaign={"duration": 800.0, "hyperperiods": 2})
        with pytest.raises(
            ConfigurationError, match="either duration or hyperperiods"
        ):
            parse_scenario(document)

    def test_explicit_priorities_required_when_declared(self):
        document = _doc(priorities="explicit")
        with pytest.raises(
            ConfigurationError, match=r"tasks\[0\]\.priority: required"
        ):
            parse_scenario(document)

    def test_priority_forbidden_under_rate_monotonic(self):
        document = _doc()
        document["tasks"][0]["priority"] = 0
        with pytest.raises(
            ConfigurationError, match=r"tasks\[0\]\.priority: only allowed"
        ):
            parse_scenario(document)

    def test_infeasible_weakly_hard_demand_rejected(self):
        document = _doc(
            tasks=[
                {"name": "hard", "wcet": 900.0, "period": 1000.0},
                {
                    "name": "soft",
                    "wcet": 900.0,
                    "period": 1000.0,
                    "weakly_hard": [1, 2],
                },
            ]
        )
        with pytest.raises(
            ConfigurationError, match="tasks: weakly-hard demand 1.350"
        ):
            parse_scenario(document)

    def test_bimodal_knob_rejected_on_other_models(self):
        document = _doc(execution={"model": "wcet", "p_short": 0.5})
        with pytest.raises(
            ConfigurationError, match=r"execution\.p_short: not accepted"
        ):
            parse_scenario(document)

    def test_load_scenario_rejects_malformed_json(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(ConfigurationError):
            load_scenario(path)


class TestNormalisation:
    def test_time_unit_scales_to_microseconds(self):
        ms = parse_scenario(
            _doc(
                time_unit="ms",
                tasks=[{"name": "a", "wcet": 1.0, "period": 4.0}],
            )
        )
        task = next(iter(ms.taskset))
        assert task.wcet == 1_000.0
        assert task.period == 4_000.0
        assert ms.campaign.duration == 4_000.0

    def test_weakly_hard_constraints_are_coerced(self):
        document = _doc()
        document["tasks"][1]["weakly_hard"] = [1, 2]
        scenario = parse_scenario(document)
        assert scenario.constraints == {"b": WeaklyHard(1, 2)}

    def test_canonical_document_is_itself_valid(self):
        scenario = parse_scenario(_doc())
        canonical = scenario.canonical_document()
        assert canonical["time_unit"] == "us"
        assert canonical["priorities"] == "explicit"
        reparsed = parse_scenario(canonical)
        assert reparsed.fingerprint() == scenario.fingerprint()


class TestFingerprint:
    def test_equal_documents_equal_fingerprints(self):
        assert (
            parse_scenario(_doc()).fingerprint()
            == parse_scenario(copy.deepcopy(_doc())).fingerprint()
        )

    def test_task_change_changes_fingerprint(self):
        changed = _doc()
        changed["tasks"][0]["wcet"] = 101.0
        assert (
            parse_scenario(_doc()).fingerprint()
            != parse_scenario(changed).fingerprint()
        )

    def test_campaign_change_changes_fingerprint(self):
        assert (
            parse_scenario(_doc()).fingerprint()
            != parse_scenario(_doc(campaign={"seeds": [1, 2]})).fingerprint()
        )

    def test_composes_with_the_service_workload_fingerprint(self):
        """Scenarios over the same task set embed the same workload digest."""
        a = parse_scenario(_doc())
        b = parse_scenario(_doc(campaign={"seeds": [1, 2, 3]}))
        assert a.fingerprint() != b.fingerprint()
        assert taskset_fingerprint(a.taskset) == taskset_fingerprint(b.taskset)
