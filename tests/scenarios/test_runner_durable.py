"""Scenario campaigns through the checkpoint journal: prefill + identity.

ISSUE 10 made scenario cells content-addressable (the factory slots
implement ``checkpoint_payload()``), so a re-run of the identical
scenario against the same journal prefills every finished cell instead
of recomputing it — the mechanism the durable server leans on for
idempotent re-submission.
"""

from __future__ import annotations

from repro.experiments.checkpoint import CheckpointJournal, canonical_spec_payload
from repro.scenarios import load_pack
from repro.scenarios.runner import run_scenario, scenario_specs


def _run(scenario, tmp_path, **kwargs):
    events = []
    report = run_scenario(
        scenario, jobs=1, progress=events.append,
        checkpoint=tmp_path, **kwargs
    )
    return report, events


class TestContentAddressableCells:
    def test_every_pack_cell_is_addressable(self):
        # The factory slots (JCL constraints, fault plans) must not make
        # a cell opaque to the journal — an unaddressable cell silently
        # recomputes on every resume.
        from repro.scenarios import available_packs

        for name in available_packs():
            scenario = load_pack(name)
            for execution in ("exact", "fast"):
                for spec in scenario_specs(scenario, execution=execution):
                    assert canonical_spec_payload(spec) is not None, (
                        f"{name}: cell not content-addressable"
                    )

    def test_execution_mode_does_not_alias(self):
        scenario = load_pack("weakly_hard")
        exact = {
            canonical_spec_payload(s)["execution"]
            for s in scenario_specs(scenario, execution="exact")
        }
        fast = {
            canonical_spec_payload(s)["execution"]
            for s in scenario_specs(scenario, execution="fast")
        }
        assert exact == {"exact"} and fast == {"fast"}


class TestCheckpointPrefill:
    def test_rerun_prefills_every_cell(self, tmp_path):
        scenario = load_pack("weakly_hard")
        report, events = _run(scenario, tmp_path)
        assert all(e.get("checkpoint") == "stored" for e in events)
        assert len(CheckpointJournal(tmp_path).load()) == len(events)

        again, replays = _run(scenario, tmp_path)
        assert all(e.get("checkpoint") == "hit" for e in replays)
        # Bit-identical verdicts: the journaled results are the results.
        for before, after in zip(report.cells, again.cells):
            assert before.result.average_power == after.result.average_power
            assert before.violations == after.violations

    def test_partial_journal_recomputes_only_the_tail(self, tmp_path):
        scenario = load_pack("weakly_hard")
        _run(scenario, tmp_path)
        # Simulate a crash that lost the last committed cell: drop the
        # final journal line.
        journal = CheckpointJournal(tmp_path)
        lines = journal.path.read_bytes().splitlines(keepends=True)
        journal.path.write_bytes(b"".join(lines[:-1]))

        _, events = _run(scenario, tmp_path)
        states = [e.get("checkpoint") for e in events]
        assert states.count("hit") == len(lines) - 1
        assert states.count("stored") == 1

    def test_exact_and_fast_never_share_journal_entries(self, tmp_path):
        scenario = load_pack("weakly_hard")
        _run(scenario, tmp_path, execution="exact")
        _, events = _run(scenario, tmp_path, execution="fast")
        # A fast campaign over an exact journal must recompute: serving
        # an exact result to a fast campaign (or vice versa) would mix
        # kernel paths within one campaign's provenance.
        assert all(e.get("checkpoint") == "stored" for e in events)
