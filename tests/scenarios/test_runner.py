"""Scenario campaign runner: grid construction, judging, progress events."""

import json
import pickle

import pytest

from repro.experiments.runner import RunSpec
from repro.scenarios import load_pack, run_scenario, scenario_specs
from repro.scenarios.runner import _FaultFactory, _JclFactory


@pytest.fixture(scope="module")
def weakly_hard_report():
    """One serial run of the EXP-W pack, shared across the module."""
    scenario = load_pack("weakly_hard")
    events = []
    report = run_scenario(scenario, jobs=1, progress=events.append)
    return scenario, report, events


class TestSpecs:
    def test_grid_is_scheduler_major(self):
        scenario = load_pack("weakly_hard")
        specs = scenario_specs(scenario)
        grid = [(s.extra["scheduler_name"], s.seed) for s in specs]
        expected = [
            (scheduler, seed)
            for scheduler in scenario.campaign.schedulers
            for seed in scenario.campaign.seeds
        ]
        assert grid == expected
        assert all(isinstance(spec, RunSpec) for spec in specs)

    def test_jcl_cells_carry_the_constraints(self):
        scenario = load_pack("weakly_hard")
        by_scheduler = {
            spec.extra["scheduler_name"]: spec for spec in scenario_specs(scenario)
        }
        assert isinstance(by_scheduler["jcl"].scheduler, _JclFactory)
        assert by_scheduler["fps"].scheduler == "fps"
        factory = by_scheduler["jcl"].scheduler
        assert factory.constraints == {
            name: constraint.as_pair()
            for name, constraint in scenario.constraints.items()
        }

    def test_factories_pickle(self):
        """Cells cross process boundaries; the factories must survive it."""
        scenario = load_pack("weakly_hard")
        for spec in scenario_specs(scenario):
            if isinstance(spec.scheduler, (_JclFactory, _FaultFactory)):
                pickle.loads(pickle.dumps(spec.scheduler))
            pickle.loads(pickle.dumps(spec.faults))

    def test_fault_factory_builds_fresh_layers(self):
        scenario = load_pack("weakly_hard")
        factory = _FaultFactory(scenario.faults)
        assert factory() is not factory()


class TestReport:
    def test_exp_w_contrast(self, weakly_hard_report):
        _, report, _ = weakly_hard_report
        verdicts = report.satisfied_by_scheduler()
        assert verdicts["fps"] is False
        assert verdicts["jcl"] is True

    def test_render_marks_violations(self, weakly_hard_report):
        _, report, _ = weakly_hard_report
        rendered = report.render()
        assert "VIOLATED" in rendered
        assert "ok" in rendered
        assert report.fingerprint[:12] in rendered

    def test_cells_cover_the_grid(self, weakly_hard_report):
        scenario, report, _ = weakly_hard_report
        expected = len(scenario.campaign.schedulers) * len(
            scenario.campaign.seeds
        )
        assert len(report.cells) == expected
        assert [cell.index for cell in report.cells] == list(range(expected))
        assert not any(cell.failed for cell in report.cells)


class TestProgress:
    def test_one_event_per_cell_and_json_ready(self, weakly_hard_report):
        scenario, report, events = weakly_hard_report
        assert len(events) == len(report.cells)
        for event in events:
            json.dumps(event)  # must be JSON-serialisable as-is
            assert event["event"] == "cell"
            assert event["total"] == len(report.cells)
            assert event["ok"] is True
            assert "weakly_hard_ok" in event

    def test_events_carry_the_verdict(self, weakly_hard_report):
        _, _, events = weakly_hard_report
        by_scheduler = {event["scheduler"]: event for event in events}
        assert by_scheduler["fps"]["weakly_hard_ok"] is False
        assert by_scheduler["fps"]["violations"]
        assert by_scheduler["jcl"]["weakly_hard_ok"] is True
        assert by_scheduler["jcl"]["violations"] == {}

    def test_pool_run_matches_serial(self):
        """jobs=2 commits through the supervised pool; same verdicts."""
        scenario = load_pack("weakly_hard")
        serial = run_scenario(scenario, jobs=1)
        pooled = run_scenario(scenario, jobs=2)
        assert (
            pooled.satisfied_by_scheduler() == serial.satisfied_by_scheduler()
        )
        assert pooled.fingerprint == serial.fingerprint
