"""Tests for the units helper module."""

import pytest

from repro.units import (
    MHZ,
    MS,
    SECOND,
    US,
    approx_equal,
    cycles_to_us,
    mhz,
    ms,
    seconds,
    us,
    us_to_cycles,
)


class TestConversions:
    def test_constants(self):
        assert US == 1.0
        assert MS == 1_000.0
        assert SECOND == 1_000_000.0
        assert MHZ == 1.0

    def test_helpers(self):
        assert us(25) == 25.0
        assert ms(2.5) == 2_500.0
        assert seconds(0.5) == 500_000.0
        assert mhz(100) == 100.0

    def test_cycles_roundtrip(self):
        """µs x MHz = cycles: the paper's 10-cycle wakeup at 100 MHz."""
        assert cycles_to_us(10, 100.0) == pytest.approx(0.1)
        assert us_to_cycles(0.1, 100.0) == pytest.approx(10.0)
        duration = 123.4
        assert cycles_to_us(us_to_cycles(duration, 73.0), 73.0) == pytest.approx(
            duration
        )

    def test_zero_frequency_rejected(self):
        with pytest.raises(ValueError):
            cycles_to_us(10, 0.0)

    def test_approx_equal(self):
        assert approx_equal(1.0, 1.0 + 1e-12)
        assert not approx_equal(1.0, 1.0 + 1e-6)
