"""The perf gate's decision logic must trip on regressions — provably.

``benchmarks/check_regression.py`` separates measurement from judgment:
:func:`evaluate` is pure, taking baseline payloads and a dict of fresh
numbers.  These tests feed it synthetic inputs to prove the gate (a)
passes an unchanged tree, (b) fails a 2x slowdown in either direction
(throughput drop, latency blow-up), and (c) normalises away runner-speed
differences via the calibration probe — a 2x-faster machine with
2x-faster numbers is *not* an improvement, and a 2x-faster machine with
unchanged numbers *is* a regression.
"""

import pathlib
import sys

import pytest

sys.path.insert(0, str(pathlib.Path(__file__).parent.parent / "benchmarks"))

from check_regression import (  # noqa: E402
    Check,
    GateInputError,
    baseline_value,
    evaluate,
    metric_value,
)

OPS = 1_000_000.0
CAMPAIGN = 20_000_000.0
SINGLE = 12_000_000.0
HIT_P50_MS = 0.8
FASTPATH = 150.0


def kernel_bench(clock_scale=1.0, fastpath=FASTPATH):
    return {
        "benchmark": "bench_kernel",
        "schema": "bench-metrics/v1",
        "tests": {
            "test_kernel_throughput": {
                "wall_time_s": 1.0,
                "metrics": [
                    {
                        "name": "campaign_untraced_serial_per_wall_s",
                        "value": CAMPAIGN,
                        "units": "simulated µs per wall-clock s",
                    },
                    {
                        "name": "single_cell_untraced_per_wall_s",
                        "value": SINGLE,
                        "units": "simulated µs per wall-clock s",
                    },
                    {
                        "name": "clock_scale_vs_capture",
                        "value": clock_scale,
                        "units": "ratio",
                    },
                ],
            },
            "test_fastpath_campaign": {
                "wall_time_s": 1.0,
                "metrics": [
                    {
                        "name": "fastpath_campaign_speedup",
                        "value": fastpath,
                        "units": "x",
                    }
                ],
            },
        },
    }


def service_bench():
    return {
        "benchmark": "bench_service",
        "schema": "bench-metrics/v1",
        "tests": {
            "test_hit_miss_latency_over_http": {
                "wall_time_s": 1.0,
                "metrics": [
                    {
                        "name": "hit_latency_p50_ms",
                        "value": HIT_P50_MS,
                        "units": "ms",
                    }
                ],
            }
        },
    }


KERNEL_BASELINE = {"calibration_ops_per_s": OPS}


def fresh(ops=OPS, campaign=CAMPAIGN, single=SINGLE, hit=HIT_P50_MS,
          fastpath=FASTPATH):
    return {
        "ops_per_s": ops,
        "campaign_per_wall_s": campaign,
        "single_cell_per_wall_s": single,
        "hit_p50_ms": hit,
        "fastpath_speedup": fastpath,
    }


def run(fresh_numbers, **kwargs):
    return evaluate(
        kernel_bench(),
        KERNEL_BASELINE,
        fresh_numbers,
        service_bench=service_bench(),
        **kwargs,
    )


class TestMetricValue:
    def test_finds_named_metric(self):
        assert metric_value(
            kernel_bench(), "test_kernel_throughput", "clock_scale_vs_capture"
        ) == 1.0

    def test_missing_metric_is_a_gate_input_error(self):
        # Not a bare KeyError: the message must name the metric AND the
        # command that regenerates the stale baseline.
        with pytest.raises(GateInputError, match="nope") as excinfo:
            metric_value(kernel_bench(), "test_kernel_throughput", "nope")
        assert "bench_kernel" in str(excinfo.value)
        assert "pytest" in str(excinfo.value)

    def test_missing_test_is_a_gate_input_error(self):
        with pytest.raises(GateInputError, match="test_gone"):
            metric_value(kernel_bench(), "test_gone", "anything")


class TestBaselineValue:
    def test_present_key_passes_through(self):
        assert baseline_value(KERNEL_BASELINE, "calibration_ops_per_s") == OPS

    def test_missing_key_names_the_regeneration_command(self):
        with pytest.raises(GateInputError, match="calibration_ops_per_s") as excinfo:
            baseline_value({}, "calibration_ops_per_s")
        assert "baseline_capture.py" in str(excinfo.value)

    def test_evaluate_surfaces_missing_baseline_key(self):
        with pytest.raises(GateInputError, match="baseline_capture.py"):
            evaluate(kernel_bench(), {"label": "stale"}, fresh())


class TestIdentity:
    def test_unchanged_numbers_pass(self):
        checks = run(fresh())
        assert len(checks) == 4
        assert all(check.ok for check in checks)
        assert all(check.regression == pytest.approx(0.0) for check in checks)

    def test_no_fastpath_probe_means_no_fastpath_check(self):
        numbers = fresh()
        numbers.pop("fastpath_speedup")
        checks = run(numbers)
        assert len(checks) == 3
        assert not any(c.name == "kernel.fastpath_speedup" for c in checks)

    def test_small_jitter_within_tolerance_passes(self):
        checks = run(fresh(campaign=CAMPAIGN * 0.9, hit=HIT_P50_MS * 1.2))
        assert all(check.ok for check in checks)


class TestSyntheticSlowdown:
    def test_2x_throughput_slowdown_fails(self):
        checks = {c.name: c for c in run(fresh(campaign=CAMPAIGN / 2))}
        failed = checks["kernel.campaign_throughput"]
        assert not failed.ok
        assert failed.regression == pytest.approx(0.5)
        # The untouched checks still pass: the gate points at the culprit.
        assert checks["kernel.single_cell_throughput"].ok
        assert checks["service.warm_hit_p50_ms"].ok

    def test_2x_single_cell_slowdown_fails(self):
        checks = {c.name: c for c in run(fresh(single=SINGLE / 2))}
        assert not checks["kernel.single_cell_throughput"].ok

    def test_2x_latency_blowup_fails(self):
        checks = {c.name: c for c in run(fresh(hit=HIT_P50_MS * 2))}
        failed = checks["service.warm_hit_p50_ms"]
        assert not failed.ok
        assert failed.regression == pytest.approx(1.0)

    def test_fastpath_collapse_fails(self):
        # Losing fast-forwarding collapses the speedup toward 1x — far
        # beyond the wide tolerance.  The gate must trip.
        checks = {c.name: c for c in run(fresh(fastpath=1.2))}
        failed = checks["kernel.fastpath_speedup"]
        assert not failed.ok
        assert failed.regression > 0.9
        # The untouched checks still pass: the gate points at the culprit.
        assert checks["kernel.campaign_throughput"].ok

    def test_fastpath_load_jitter_passes(self):
        # A 2x swing is load noise on a ms-scale wall, not rot.
        checks = {c.name: c for c in run(fresh(fastpath=FASTPATH / 2))}
        assert checks["kernel.fastpath_speedup"].ok

    def test_fastpath_is_not_clock_rescaled(self):
        # Self-normalized ratio: a faster probe must NOT move expected.
        checks = {c.name: c for c in run(fresh(ops=OPS * 2, fastpath=FASTPATH))}
        assert checks["kernel.fastpath_speedup"].expected == FASTPATH

    def test_just_beyond_tolerance_fails(self):
        checks = run(fresh(campaign=CAMPAIGN * 0.75))  # 25% > 20% budget
        assert not all(check.ok for check in checks)

    def test_tolerance_is_configurable(self):
        checks = run(fresh(campaign=CAMPAIGN * 0.75), tolerance=0.30)
        assert all(check.ok for check in checks)


class TestClockNormalization:
    def test_faster_runner_with_scaled_numbers_passes(self):
        # 2x-faster clock probe and 2x the throughput: same code speed.
        checks = run(
            fresh(
                ops=OPS * 2,
                campaign=CAMPAIGN * 2,
                single=SINGLE * 2,
                hit=HIT_P50_MS / 2,
            )
        )
        assert all(check.ok for check in checks)
        assert all(check.regression == pytest.approx(0.0) for check in checks)

    def test_faster_runner_with_unchanged_numbers_fails(self):
        # The machine doubled in speed but the code didn't: regression.
        checks = run(fresh(ops=OPS * 2))
        assert not all(check.ok for check in checks)

    def test_clock_scale_chain_is_applied(self):
        # bench_kernel was itself captured on a half-speed clock: the
        # expected values must rescale through that stored ratio too.
        checks = evaluate(
            kernel_bench(clock_scale=0.5),
            KERNEL_BASELINE,
            fresh(campaign=CAMPAIGN * 2, single=SINGLE * 2),
        )
        assert all(check.ok for check in checks)
        assert all(check.regression == pytest.approx(0.0) for check in checks)


class TestCheckRendering:
    def test_render_marks_failures(self):
        ok = Check(
            name="a", baseline=1.0, expected=1.0, fresh=1.0,
            tolerance=0.2, direction="higher-is-better",
        )
        bad = Check(
            name="b", baseline=1.0, expected=1.0, fresh=0.4,
            tolerance=0.2, direction="higher-is-better",
        )
        assert ok.render().startswith("ok")
        assert bad.render().startswith("FAIL")

    def test_degenerate_expected_never_divides_by_zero(self):
        check = Check(
            name="z", baseline=0.0, expected=0.0, fresh=1.0,
            tolerance=0.2, direction="higher-is-better",
        )
        assert check.regression == 0.0
        assert check.ok
