"""Fleet chaos: SIGKILL a real replica under live client load.

The headline robustness claim of the fleet layer, exercised for real:
three ``lpfps serve`` subprocesses behind a :class:`FleetClient`, one of
them SIGKILLed mid-run.  The contract is *zero failed client requests*
(failover re-issues the idempotent, content-addressed query elsewhere),
the supervisor restores the dead replica, answers stay bit-identical
across replicas, and a crash-looping replica is quarantined instead of
restarted forever.
"""

from __future__ import annotations

import os
import random
import signal
import time

import pytest

from repro.service.fleet import FleetClient
from repro.service.supervisor import FleetSupervisor, RestartBudget

pytestmark = pytest.mark.chaos

QUERY = {"kind": "energy", "app": "example", "duration": 400.0}


def _fast_supervisor(tmp_path, replicas=3, **kwargs):
    kwargs.setdefault(
        "budget_factory",
        lambda: RestartBudget(base_s=0.1, cap_s=0.5, max_restarts=10),
    )
    return FleetSupervisor(
        replicas=replicas,
        cache_dir=tmp_path / "cache",
        jobs=1,
        poll_interval_s=0.05,
        probe_interval_s=0.2,
        log_dir=tmp_path / "logs",
        **kwargs,
    )


def _sigkill(supervisor, index):
    pid = supervisor.status()[index]["pid"]
    assert pid is not None
    os.kill(pid, signal.SIGKILL)


class TestReplicaKillUnderLoad:
    def test_zero_failed_requests_and_replica_restored(self, tmp_path):
        supervisor = _fast_supervisor(tmp_path)
        with supervisor:
            client = FleetClient(supervisor.urls(), rng=random.Random(1))
            by_seed = {}
            for i in range(40):
                if i == 10:
                    _sigkill(supervisor, 1)
                status, payload = client({**QUERY, "seed": i % 4})
                assert status == 200, payload
                assert payload["ok"] is True
                # Bit-identity across replicas: whichever replica answers
                # (cache hit or fresh simulation), the payload is the same.
                seen = by_seed.setdefault(i % 4, payload)
                assert payload == seen
            assert client.failovers >= 1
            # The post-kill requests are warm cache hits and can drain
            # faster than one monitor tick: give the poll loop time to
            # observe the death before asserting it was recorded.
            deadline = time.monotonic() + 30.0
            while (
                supervisor.counter("fleet.deaths") < 1
                and time.monotonic() < deadline
            ):
                time.sleep(0.05)
            assert supervisor.counter("fleet.deaths") >= 1
            assert supervisor.wait_serving(3, timeout_s=30.0)
            assert supervisor.counter("fleet.restarts") >= 1
        # SIGTERM drain on the way out: every replica (including the
        # respawned one) exited cleanly, none needed a SIGKILL.
        assert [row["state"] for row in supervisor.status()] == ["stopped"] * 3
        assert all(r.process.returncode == 0 for r in supervisor._replicas)
        assert supervisor.counter("fleet.drain_kills") == 0

    def test_crash_looping_replica_is_quarantined_not_thrashed(self, tmp_path):
        budget = lambda: RestartBudget(  # noqa: E731
            base_s=0.1, cap_s=0.2, max_restarts=1, window_s=60.0
        )
        supervisor = _fast_supervisor(tmp_path, replicas=2, budget_factory=budget)
        with supervisor:
            client = FleetClient(supervisor.urls(), rng=random.Random(1))
            _sigkill(supervisor, 0)          # death 1: restarts
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                row = supervisor.status()[0]
                if row["spawns"] == 2 and row["state"] == "serving":
                    break
                time.sleep(0.05)
            assert supervisor.status()[0]["spawns"] == 2
            assert supervisor.wait_serving(2, timeout_s=30.0)
            _sigkill(supervisor, 0)          # death 2: budget exhausted
            deadline = time.monotonic() + 15.0
            while time.monotonic() < deadline:
                if supervisor.status()[0]["state"] == "quarantined":
                    break
                time.sleep(0.05)
            assert supervisor.status()[0]["state"] == "quarantined"
            assert supervisor.counter("fleet.quarantines") == 1
            spawns_at_quarantine = supervisor.status()[0]["spawns"]
            # Degraded but serving: the surviving replica answers, the
            # client ejects the dead endpoint after a few refusals.
            for i in range(10):
                status, payload = client({**QUERY, "seed": i})
                assert status == 200, payload
            time.sleep(1.0)  # would-be thrash window
            assert supervisor.status()[0]["spawns"] == spawns_at_quarantine
