"""Property tests: journal maintenance never loses a committed cell.

ISSUE 10 satellite S6.  Hypothesis drives random interleavings of the
four things that ever happen to a checkpoint journal — a committed cell,
a torn/alien trailing write (a crash mid-append), a GC compaction, and
an integrity scrub — and checks the two invariants the durable-campaign
stack is built on:

* **No committed cell is ever dropped.**  Tears only ever damage the
  record being appended; every previously committed cell must load with
  its exact payload after any maintenance sequence.
* **Maintenance is idempotent.**  A second GC drops nothing; a second
  repair-scrub finds nothing corrupt and leaves the bytes untouched.
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.checkpoint import (
    CheckpointJournal,
    gc_journal,
    scrub_journal,
)

#: Crash-shaped garbage an append can leave behind: a torn JSON prefix,
#: a non-JSON line, raw bytes without a newline, and an intact line of
#: an alien journal version (dropped by the reader, culled by GC).
TEARS = (
    b'{"v": 2, "fp": "torn-',
    b"not json at all\n",
    b"\x00\x80\xfftrailing-binary",
    b'{"v": 99, "fp": "alien", "sha": "00", "blob": "AA=="}\n',
)

_ops = st.lists(
    st.one_of(
        st.tuples(st.just("commit"), st.integers(0, 5)),
        st.tuples(st.just("tear"), st.integers(0, len(TEARS) - 1)),
        st.tuples(st.just("gc"), st.just(0)),
        st.tuples(st.just("scrub"), st.just(0)),
    ),
    min_size=1,
    max_size=12,
)


def _apply(directory: Path, ops):
    """Run one op sequence; returns the model of committed cells."""
    committed = {}
    revision = 0
    for op, arg in ops:
        if op == "commit":
            revision += 1
            fingerprint = f"cell-{arg}"
            value = {"cell": arg, "revision": revision}
            with CheckpointJournal(directory) as journal:
                assert journal.record(fingerprint, value)
            committed[fingerprint] = value
        elif op == "tear":
            path = directory / "journal.jsonl"
            directory.mkdir(parents=True, exist_ok=True)
            with open(path, "ab") as handle:
                handle.write(TEARS[arg])
        elif op == "gc":
            gc_journal(directory)
        else:
            scrub_journal(directory, repair=True)
    return committed


@settings(max_examples=60, deadline=None)
@given(ops=_ops)
def test_no_committed_cell_is_ever_dropped(ops):
    with tempfile.TemporaryDirectory() as tmp:
        directory = Path(tmp)
        committed = _apply(directory, ops)
        loaded = CheckpointJournal(directory).load()
        for fingerprint, value in committed.items():
            assert loaded.get(fingerprint) == value


@settings(max_examples=60, deadline=None)
@given(ops=_ops)
def test_gc_and_scrub_are_idempotent(ops):
    with tempfile.TemporaryDirectory() as tmp:
        directory = Path(tmp)
        committed = _apply(directory, ops)
        path = directory / "journal.jsonl"

        scrub_journal(directory, repair=True)
        bytes_after_scrub = path.read_bytes() if path.exists() else b""
        again = scrub_journal(directory, repair=True)
        assert again.corrupt == 0
        assert (path.read_bytes() if path.exists() else b"") == bytes_after_scrub

        first_gc = gc_journal(directory)
        assert first_gc.kept == len(committed)
        second_gc = gc_journal(directory)
        assert second_gc.dropped == 0
        assert second_gc.kept == first_gc.kept

        # And the maintenance pass itself never lost a commit.
        loaded = CheckpointJournal(directory).load()
        assert {
            fp: {"cell": v["cell"], "revision": v["revision"]}
            for fp, v in loaded.items()
        } == committed


@settings(max_examples=30, deadline=None)
@given(ops=_ops)
def test_scrub_report_accounts_for_every_line(ops):
    with tempfile.TemporaryDirectory() as tmp:
        directory = Path(tmp)
        _apply(directory, ops)
        report = scrub_journal(directory)  # report-only
        assert report.records == report.intact + report.corrupt
        assert report.dropped == 0  # without repair nothing is touched
