"""The supervised pool executor under real worker deaths.

These tests SIGKILL genuine worker processes (via the kill-worker chaos
plan riding inside a cell) and assert the supervisor's contract: a
mid-``run_many`` :class:`BrokenProcessPool` never escapes, surviving
cells keep their bit-identical results, and a poison-pill cell exhausts
its retry budget into a :class:`CellFailure` (contain) or
:class:`~repro.errors.ExecutionError` (raise) without taking the
campaign down.
"""

import os

import pytest

from repro.errors import ExecutionError
from repro.experiments.runner import CellFailure, RunSpec, run_many
from repro.faults.chaos import kill_worker, slow_cell, with_chaos
from repro.obs.registry import Registry, installed
from repro.tasks.generation import GaussianModel
from repro.workloads.registry import get_workload

pytestmark = pytest.mark.chaos


@pytest.fixture(autouse=True)
def _multicore(monkeypatch):
    # run_many clamps the pool width to the CPU count and runs serially
    # on a single core — which would execute kill-worker chaos in *this*
    # process.  Pretend to have cores so the supervised pool engages and
    # kills land on genuine worker processes, whatever box CI runs on.
    monkeypatch.setattr(os, "cpu_count", lambda: 4)


def _spec(seed=1):
    taskset = get_workload("cnc").prioritized()
    return RunSpec(
        taskset=taskset,
        scheduler="lpfps",
        seed=seed,
        execution_model=GaussianModel(),
        duration=9_600.0,
    )


def _sig(result):
    return (
        repr(result.energy.total),
        repr(result.average_power),
        result.jobs_completed,
        result.context_switches,
    )


class TestKillOnce:
    """A worker dies once mid-campaign; the supervisor recovers fully."""

    def test_contain_mode_recovers_every_cell(self, tmp_path):
        specs = [_spec(seed=s) for s in (1, 2, 3, 4)]
        reference = [_sig(r) for r in run_many(list(specs), jobs=1)]
        chaotic = list(specs)
        chaotic[1] = with_chaos(specs[1], kill_worker(marker=tmp_path / "fired"))
        registry = Registry()
        with installed(registry):
            results = run_many(chaotic, jobs=2, failures="contain")
        assert not any(isinstance(r, CellFailure) for r in results)
        assert [_sig(r) for r in results] == reference
        assert registry.counter_value("runner.pool_rebuilds") >= 1
        assert (tmp_path / "fired").exists()

    def test_raise_mode_broken_pool_never_escapes(self, tmp_path):
        # Regression: a worker death mid-dispatch used to surface as a
        # raw BrokenProcessPool out of run_many.  Now the supervisor
        # recovers (or degrades to the serial path) and the campaign
        # still returns every result.
        specs = [_spec(seed=s) for s in (1, 2, 3, 4)]
        reference = [_sig(r) for r in run_many(list(specs), jobs=1)]
        chaotic = list(specs)
        chaotic[2] = with_chaos(specs[2], kill_worker(marker=tmp_path / "fired"))
        results = run_many(chaotic, jobs=2)  # failures="raise", the default
        assert [_sig(r) for r in results] == reference

    def test_retried_cell_result_identical_to_serial(self, tmp_path):
        spec = _spec(seed=7)
        (reference,) = run_many([RunSpec(
            taskset=spec.taskset,
            scheduler="lpfps",
            seed=7,
            execution_model=GaussianModel(),
            duration=9_600.0,
        )], jobs=1)
        chaotic = [
            with_chaos(spec, kill_worker(marker=tmp_path / "fired")),
            _spec(seed=8),
        ]
        results = run_many(chaotic, jobs=2, failures="contain")
        assert _sig(results[0]) == _sig(reference)


class TestPoisonPill:
    """A cell that kills every worker it touches must not win."""

    def test_contain_mode_exhausts_budget_into_cell_failure(self):
        specs = [with_chaos(_spec(seed=1), kill_worker())] + [
            _spec(seed=s) for s in (2, 3, 4)
        ]
        registry = Registry()
        with installed(registry):
            results = run_many(specs, jobs=2, failures="contain", retries=1)
        failure = results[0]
        assert isinstance(failure, CellFailure)
        assert failure.error_type == "BrokenProcessPool"
        assert failure.error_kind == "internal"
        assert failure.attempts == 2  # initial dispatch + 1 retry
        assert "retry budget" in failure.message
        for r in results[1:]:
            assert not isinstance(r, CellFailure)
            assert r.jobs_completed > 0
        assert registry.counter_value("runner.pool_rebuilds") >= 2
        assert registry.counter_value("runner.cell_failures") == 1

    def test_raise_mode_exhausts_budget_into_execution_error(self):
        # The poison cell sits behind two clean cells so the first wave
        # proves the pool works before the pill lands.
        specs = [
            _spec(seed=1),
            _spec(seed=2),
            with_chaos(_spec(seed=3), kill_worker()),
            _spec(seed=4),
        ]
        with pytest.raises(ExecutionError, match="killed its worker"):
            run_many(specs, jobs=2, retries=0)

    def test_checkpoint_preserves_completed_cells_around_failure(self, tmp_path):
        # Two poison cells so the resumed campaign still has > 1 pending
        # cell and stays on the supervised pool path (a lone pending
        # cell runs serially, where a process-level kill has no
        # supervisor above it to contain it).
        def campaign():
            return [
                _spec(seed=1),
                with_chaos(_spec(seed=2), kill_worker()),
                _spec(seed=3),
                with_chaos(_spec(seed=4), kill_worker()),
            ]

        run_many(campaign(), jobs=2, failures="contain", retries=1,
                 checkpoint=tmp_path)
        # The journal holds the clean cells; resuming hits them and only
        # re-attempts the poison cells.
        registry = Registry()
        with installed(registry):
            resumed = run_many(
                campaign(), jobs=2, failures="contain", retries=1,
                checkpoint=tmp_path,
            )
        assert registry.counter_value("runner.checkpoint_hits") == 2
        assert resumed[0].metadata["checkpoint"] == "hit"
        assert resumed[2].metadata["checkpoint"] == "hit"
        assert isinstance(resumed[1], CellFailure)
        assert isinstance(resumed[3], CellFailure)


class TestSlowCell:
    def test_slow_cell_is_benign(self):
        specs = [with_chaos(_spec(seed=1), slow_cell(0.05)), _spec(seed=2)]
        reference = [_sig(r) for r in run_many([_spec(seed=1), _spec(seed=2)], jobs=1)]
        results = run_many(specs, jobs=2)
        assert [_sig(r) for r in results] == reference
