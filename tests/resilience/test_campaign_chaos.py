"""Campaign chaos: SIGKILL the server mid-campaign, resume, verify the seam.

The ISSUE 10 acceptance scenario, end to end against real processes: a
``lpfps serve --checkpoint-dir`` subprocess is SIGKILLed after at least
half its campaign has streamed; a second subprocess over the same
checkpoint dir resumes the orphaned campaign; the client reconnects with
``?after=N``.  The merged event sequence must be gapless and
duplicate-free, cell results must be bit-identical to an uninterrupted
in-process run, and the resume must not waste recomputation on cells
that were already durably committed before the kill.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import time
import urllib.error
from pathlib import Path

import pytest

from repro.scenarios import load_pack, parse_scenario
from repro.scenarios.runner import run_scenario
from repro.service.client import STREAM_TRANSPORT_ERRORS, ServiceClient

pytestmark = pytest.mark.chaos

SRC_ROOT = str(Path(__file__).resolve().parents[2] / "src")


def _scenario_document():
    """A 16-cell campaign whose cells are slow enough to kill mid-run."""
    document = load_pack("ins").canonical_document()
    document["name"] = "chaos_ins"
    document["campaign"] = {
        "schedulers": ["fps", "lpfps"],
        "seeds": [1, 2, 3, 4, 5, 6, 7, 8],
        "duration": 10_000_000.0,
    }
    return document


class _Server:
    """One ``lpfps serve`` subprocess with stdout-scraped URL."""

    def __init__(self, checkpoint_dir, cache_dir):
        env = dict(os.environ)
        existing = env.get("PYTHONPATH", "")
        env["PYTHONPATH"] = SRC_ROOT + (
            os.pathsep + existing if existing else ""
        )
        self.process = subprocess.Popen(
            [
                sys.executable, "-m", "repro.cli", "serve",
                "--port", "0", "--jobs", "1",
                "--cache-dir", str(cache_dir),
                "--checkpoint-dir", str(checkpoint_dir),
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            env=env,
            text=True,
        )
        self.url = None
        self.banner = []
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            line = self.process.stdout.readline()
            if not line:
                break
            self.banner.append(line.rstrip())
            if line.startswith("serving on "):
                self.url = line.split("serving on ", 1)[1].strip()
                break
        assert self.url, f"server never came up: {self.banner}"

    def sigkill(self):
        self.process.kill()
        self.process.wait(timeout=10.0)

    def terminate(self):
        if self.process.poll() is None:
            self.process.terminate()
            try:
                self.process.wait(timeout=15.0)
            except subprocess.TimeoutExpired:
                self.process.kill()
                self.process.wait(timeout=10.0)


class TestKillAndResume:
    def test_sigkill_mid_campaign_resumes_gapless_and_bit_identical(
        self, tmp_path
    ):
        document = _scenario_document()
        total = 16
        checkpoint, cache = tmp_path / "ckpt", tmp_path / "cache"

        first = _Server(checkpoint, cache)
        merged = []
        try:
            client = ServiceClient(first.url, timeout_s=60.0)
            status, payload = client.submit_scenario({"scenario": document})
            assert status == 200, payload
            campaign_id = payload["campaign_id"]
            assert payload["cells"] == total
            # Follow the live stream; kill at >= 50% progress.
            try:
                for event in client.stream(campaign_id):
                    merged.append(event)
                    cells = sum(1 for e in merged if e["kind"] == "cell")
                    if cells >= total // 2:
                        first.sigkill()
                        break
            except STREAM_TRANSPORT_ERRORS:
                pass  # the stream died with the server: expected
        finally:
            first.terminate()
        streamed_before_kill = [e for e in merged if e["kind"] == "cell"]
        assert len(streamed_before_kill) >= total // 2
        assert merged[-1]["kind"] != "done", "campaign finished before kill"

        # Restart over the same checkpoint dir: the orphaned manifest is
        # picked up at startup and the campaign continues.
        second = _Server(checkpoint, cache)
        try:
            assert any("resumed 1 orphaned" in b for b in second.banner), (
                second.banner
            )
            client = ServiceClient(second.url, timeout_s=120.0)
            after = merged[-1]["seq"]
            deadline = time.monotonic() + 120.0
            while time.monotonic() < deadline:
                try:
                    for event in client.stream(campaign_id, after=after):
                        if event["seq"] <= after:
                            continue
                        merged.append(event)
                        after = event["seq"]
                    if merged[-1]["kind"] in ("done", "error"):
                        break
                except STREAM_TRANSPORT_ERRORS:
                    time.sleep(0.2)
            status, metrics = client.metrics()
        finally:
            second.terminate()

        # Gapless, duplicate-free, terminal.
        assert merged[-1]["kind"] == "done", merged[-1]
        seqs = [e["seq"] for e in merged]
        assert seqs == list(range(1, len(merged) + 1))
        cells = [e for e in merged if e["kind"] == "cell"]
        assert len(cells) == total
        assert sorted(e["data"]["cell"] for e in cells) == list(range(total))

        # No wasted recompute: every cell committed before the kill came
        # back as a journal hit (or was already streamed); at most the
        # one in-flight cell is recomputed beyond the unfinished tail.
        recomputed = [
            e for e in cells[len(streamed_before_kill):]
            if e["data"].get("checkpoint") == "stored"
        ]
        unfinished = total - len(streamed_before_kill)
        assert len(recomputed) <= unfinished + 1

        # Bit-identical to an uninterrupted in-process run.
        reference = run_scenario(parse_scenario(document), jobs=1)
        by_index = {e["data"]["cell"]: e["data"] for e in cells}
        for cell in reference.cells:
            data = by_index[cell.index]
            assert data["scheduler"] == cell.scheduler
            assert data["seed"] == cell.seed
            assert data["average_power"] == cell.result.average_power
            assert data["deadline_misses"] == len(cell.result.deadline_misses)

        # The resumed server exported the durability counters.
        values = {
            row["name"]: row["value"]
            for row in metrics["tests"]["obs"]["metrics"]
        }
        assert values.get("stream.campaigns_resumed", 0) == 1
        assert values.get("cache.scrub_manifests", 0) >= 1

    def test_resume_scenario_client_rides_through_the_crash(self, tmp_path):
        # The client-side loop: one resume_scenario generator spanning a
        # SIGKILL + restart, no manual reconnect bookkeeping.
        document = _scenario_document()
        document["name"] = "chaos_ins_client"
        document["campaign"]["seeds"] = [1, 2, 3, 4]  # 8 cells
        checkpoint, cache = tmp_path / "ckpt", tmp_path / "cache"

        first = _Server(checkpoint, cache)
        events = []
        second = None
        try:
            client = ServiceClient(first.url, timeout_s=60.0)
            for event in client.resume_scenario(
                {"scenario": document},
                max_reconnects=40,
                reconnect_delay_s=0.25,
            ):
                events.append(event)
                cells = sum(1 for e in events if e["kind"] == "cell")
                if cells == 4 and second is None:
                    first.sigkill()
                    second = _Server(checkpoint, cache)
                    # Same host, new port: re-point the one client.
                    client.url = second.url.rstrip("/")
        finally:
            first.terminate()
            if second is not None:
                second.terminate()
        assert second is not None, "campaign finished before the kill"
        assert events[-1]["kind"] == "done"
        seqs = [e["seq"] for e in events]
        assert seqs == list(range(1, len(seqs) + 1))
        cells = [e for e in events if e["kind"] == "cell"]
        assert sorted(e["data"]["cell"] for e in cells) == list(range(8))
