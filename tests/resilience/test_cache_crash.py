"""Crash consistency of the disk cache tier.

The contract: a torn or corrupted shard file — what a crash mid-write
leaves behind — degrades to a *miss* (recompute) and is swept from
disk; it must never surface as a wrong hit.  The writer's
fsync-before-rename discipline is what keeps intact entries intact; the
reader's job, tested here, is to never trust a broken one.
"""

import json

from repro.faults.chaos import tear_file
from repro.service.cache import ResultCache


KEY = "ab" + "0" * 62  # 64-hex-ish content key; shard dir is key[:2]
PAYLOAD = {"ok": True, "average_power": 0.25}


def _shard(disk_dir):
    return disk_dir / KEY[:2] / f"{KEY}.json"


def _fresh(disk_dir):
    """A cache with an empty memory tier, forcing the disk read."""
    return ResultCache(memory_items=4, disk_dir=disk_dir)


class TestTornShard:
    def test_intact_entry_round_trips_through_disk(self, tmp_path):
        _fresh(tmp_path).put(KEY, PAYLOAD)
        payload, tier = _fresh(tmp_path).get_with_tier(KEY)
        assert tier == "disk"
        assert payload == PAYLOAD

    def test_torn_entry_is_a_miss_never_a_wrong_hit(self, tmp_path):
        _fresh(tmp_path).put(KEY, PAYLOAD)
        tear_file(_shard(tmp_path), seed=3)
        payload, tier = _fresh(tmp_path).get_with_tier(KEY)
        assert payload is None
        assert tier == "miss"

    def test_torn_entry_is_swept_and_rewritable(self, tmp_path):
        _fresh(tmp_path).put(KEY, PAYLOAD)
        tear_file(_shard(tmp_path), seed=9)
        cache = _fresh(tmp_path)
        assert cache.get(KEY) is None
        assert not _shard(tmp_path).exists()  # the corpse was unlinked
        cache.put(KEY, PAYLOAD)
        assert _fresh(tmp_path).get(KEY) == PAYLOAD

    def test_every_tear_offset_degrades_safely(self, tmp_path):
        # Sweep tear offsets: whatever byte the "crash" stopped at, the
        # reader answers the true payload or a miss — nothing else.
        for seed in range(12):
            _fresh(tmp_path).put(KEY, PAYLOAD)
            tear_file(_shard(tmp_path), seed=seed)
            got = _fresh(tmp_path).get(KEY)
            assert got is None or got == PAYLOAD

    def test_garbage_json_is_a_miss(self, tmp_path):
        _fresh(tmp_path).put(KEY, PAYLOAD)
        _shard(tmp_path).write_text(json.dumps(["not", "a", "dict"]))
        assert _fresh(tmp_path).get(KEY) is None

    def test_zero_length_shard_is_a_miss(self, tmp_path):
        # The exact artifact an unsynced rename leaves after power loss.
        _fresh(tmp_path).put(KEY, PAYLOAD)
        _shard(tmp_path).write_bytes(b"")
        assert _fresh(tmp_path).get(KEY) is None
