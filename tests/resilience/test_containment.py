"""Per-cell fault containment: ``run_many(..., failures="contain")``.

A raising cell must come back as a structured, picklable
:class:`~repro.experiments.runner.CellFailure` in its own slot — order
preserved, neighbours untouched — while the default ``failures="raise"``
keeps the historical propagate-first semantics.
"""

import pickle

import pytest

from repro.errors import ConfigurationError, DeadlineMissError
from repro.experiments.runner import CellFailure, RunSpec, run_many
from repro.tasks.priority import rate_monotonic
from repro.tasks.task import Task, TaskSet
from repro.workloads.registry import get_workload


def _boom_scheduler():
    """Module-level (hence picklable) factory that always raises."""
    raise ValueError("boom factory")


def _good_spec(seed=1):
    taskset = get_workload("cnc").prioritized()
    return RunSpec(taskset=taskset, scheduler="fps", seed=seed, duration=9_600.0)


def _bad_spec():
    taskset = get_workload("cnc").prioritized()
    return RunSpec(taskset=taskset, scheduler=_boom_scheduler, duration=9_600.0)


def _miss_spec():
    overloaded = rate_monotonic(
        TaskSet(
            name="overload",
            tasks=[
                Task("a", wcet=800.0, period=1000.0),
                Task("b", wcet=800.0, period=1000.0),
            ],
        )
    )
    return RunSpec(
        taskset=overloaded, scheduler="fps", duration=5_000.0, on_miss="raise"
    )


class TestContainSerial:
    def test_raising_cell_becomes_structured_failure(self):
        specs = [_good_spec(1), _bad_spec(), _good_spec(2)]
        results = run_many(specs, jobs=1, failures="contain")
        assert len(results) == 3
        assert results[0].jobs_completed > 0
        assert results[2].jobs_completed > 0
        assert [r.failed for r in results] == [False, True, False]
        failure = results[1]
        assert isinstance(failure, CellFailure)
        assert failure.failed
        assert failure.index == 1
        assert failure.error_type == "ValueError"
        assert failure.error_kind == "internal"
        assert "boom factory" in failure.message
        assert "ValueError" in failure.traceback
        assert failure.taskset == "cnc"
        assert failure.scheduler == "_boom_scheduler"

    def test_deadline_miss_contained_and_classified(self):
        results = run_many([_miss_spec()], jobs=1, failures="contain")
        (failure,) = results
        assert isinstance(failure, CellFailure)
        assert failure.error_type == "DeadlineMissError"
        # SchedulingError carries no explicit kind: deterministic
        # library refusals classify as "refusal".
        assert failure.error_kind == "refusal"

    def test_default_raise_mode_still_propagates(self):
        with pytest.raises(DeadlineMissError):
            run_many([_miss_spec()], jobs=1)

    def test_metadata_stamped_on_failures_too(self):
        results = run_many([_bad_spec()], jobs=1, failures="contain")
        (failure,) = results
        assert failure.metadata["executor"] == "serial"
        assert failure.metadata["requested_jobs"] == 1

    def test_failure_records_are_picklable(self):
        (failure,) = run_many([_bad_spec()], jobs=1, failures="contain")
        clone = pickle.loads(pickle.dumps(failure))
        assert isinstance(clone, CellFailure)
        assert clone.error_type == failure.error_type
        assert clone.message == failure.message


class TestContainPooled:
    def test_raising_cell_contained_under_pool(self):
        specs = [_good_spec(1), _bad_spec(), _good_spec(2), _good_spec(3)]
        results = run_many(specs, jobs=2, failures="contain")
        assert isinstance(results[1], CellFailure)
        assert results[1].error_type == "ValueError"
        for i in (0, 2, 3):
            assert results[i].jobs_completed > 0

    def test_contained_neighbours_match_serial_reference(self):
        specs = [_good_spec(1), _bad_spec(), _good_spec(2)]
        reference = run_many([_good_spec(1), _good_spec(2)], jobs=1)
        contained = run_many(specs, jobs=2, failures="contain")
        assert repr(contained[0].energy.total) == repr(reference[0].energy.total)
        assert repr(contained[2].energy.total) == repr(reference[1].energy.total)

    def test_pooled_raise_mode_still_propagates(self):
        specs = [_good_spec(1), _miss_spec()]
        with pytest.raises(DeadlineMissError):
            run_many(specs, jobs=2)


class TestFailuresValidation:
    def test_unknown_failures_policy_rejected(self):
        with pytest.raises(ConfigurationError, match="failures"):
            run_many([_good_spec()], failures="ignore")

    def test_bad_retries_rejected(self):
        for retries in (-1, 1.5, True, "2"):
            with pytest.raises(ConfigurationError, match="retries"):
                run_many([_good_spec()], retries=retries)

    def test_cell_failures_counted_in_obs(self):
        from repro.obs.registry import Registry, installed

        registry = Registry()
        with installed(registry):
            run_many([_bad_spec(), _good_spec()], jobs=1, failures="contain")
        assert registry.counter_value("runner.cell_failures") == 1
