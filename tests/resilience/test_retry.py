"""Retrying client + circuit breaker, with injected clock/sleep/RNG.

Everything here is deterministic and instantaneous: sleeps are recorded
rather than slept, the breaker runs on a hand-cranked clock, and the
Hypothesis property pins the backoff-total bound the module docstring
promises — no retry storm can sleep longer than
``(max_attempts - 1) * cap_s``.
"""

import random

import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigurationError
from repro.service.retry import (
    CircuitBreaker,
    CircuitOpenError,
    RetryPolicy,
    RetryingClient,
    backoff_schedule,
)


class _FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


class _ScriptedTransport:
    """Replays a script of ``(status, payload)`` answers or exceptions."""

    def __init__(self, script):
        self.script = list(script)
        self.calls = 0

    def __call__(self, request):
        self.calls += 1
        item = self.script.pop(0) if self.script else (200, {"ok": True})
        if isinstance(item, BaseException):
            raise item
        return item


def _client(script, **kwargs):
    sleeps = []
    client = RetryingClient(
        _ScriptedTransport(script),
        policy=kwargs.pop("policy", RetryPolicy(max_attempts=4)),
        breaker=kwargs.pop("breaker", None),
        rng=random.Random(1),
        sleep=sleeps.append,
        **kwargs,
    )
    return client, sleeps


class TestRetries:
    def test_success_passes_straight_through(self):
        client, sleeps = _client([(200, {"ok": True})])
        status, payload = client({"q": 1})
        assert status == 200 and payload == {"ok": True}
        assert client.attempts == 1 and client.retries == 0
        assert sleeps == []

    def test_503_then_success_retries(self):
        client, sleeps = _client([(503, {}), (503, {}), (200, {"ok": True})])
        status, _ = client({})
        assert status == 200
        assert client.attempts == 3 and client.retries == 2
        assert len(sleeps) == 2

    def test_504_is_retried_answer_may_be_cached(self):
        client, _ = _client([(504, {}), (200, {"ok": True, "cached": True})])
        status, payload = client({})
        assert status == 200 and payload["cached"]

    def test_exhaustion_returns_last_flow_control_answer(self):
        client, sleeps = _client([(503, {"error": "shed"})] * 10)
        status, payload = client({})
        assert status == 503 and payload == {"error": "shed"}
        assert client.attempts == 4  # max_attempts, then give up
        assert len(sleeps) == 3      # never sleeps after the final attempt

    def test_400_never_retried(self):
        client, _ = _client([(400, {"error": "bad"}), (200, {})])
        status, _ = client({})
        assert status == 400
        assert client.attempts == 1

    def test_transport_error_then_success(self):
        client, _ = _client([ConnectionError("down"), (200, {"ok": True})])
        status, _ = client({})
        assert status == 200
        assert client.transport_failures == 1

    def test_all_transport_failures_raise_last_error(self):
        client, _ = _client([ConnectionError(f"n{i}") for i in range(10)])
        with pytest.raises(ConnectionError, match="n3"):
            client({})
        assert client.attempts == 4

    def test_counters_land_in_installed_registry(self):
        from repro.obs.registry import Registry, installed

        registry = Registry()
        client, _ = _client([(503, {}), (200, {})])
        with installed(registry):
            client({})
        assert registry.counter_value("client.attempts") == 2
        assert registry.counter_value("client.retries") == 1


class TestPolicyValidation:
    def test_bad_knobs_rejected(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(base_s=0.0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(base_s=1.0, cap_s=0.5)


class TestBreaker:
    def test_trips_after_consecutive_transport_failures(self):
        clock = _FakeClock()
        breaker = CircuitBreaker(failure_threshold=3, reset_timeout_s=30.0,
                                 clock=clock)
        script = [ConnectionError("down")] * 10
        client, _ = _client(
            script, policy=RetryPolicy(max_attempts=10), breaker=breaker
        )
        with pytest.raises(CircuitOpenError):
            client({})
        assert breaker.state == "open"
        assert breaker.trips == 1
        assert client.transport_failures == 3  # threshold, then fast-fail
        assert client.fast_fails == 1

    def test_open_breaker_fast_fails_new_calls(self):
        clock = _FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout_s=30.0,
                                 clock=clock)
        client, _ = _client([ConnectionError("down")],
                            policy=RetryPolicy(max_attempts=2), breaker=breaker)
        with pytest.raises(CircuitOpenError):
            client({})
        fresh, _ = _client([(200, {})], breaker=breaker)
        with pytest.raises(CircuitOpenError):
            fresh({})
        assert fresh.attempts == 0  # the transport was never touched

    def test_half_open_probe_success_closes(self):
        clock = _FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout_s=30.0,
                                 clock=clock)
        breaker.record_failure()
        assert breaker.state == "open"
        clock.advance(30.0)
        assert breaker.state == "half-open"
        assert breaker.allow()       # the single probe
        assert not breaker.allow()   # concurrent callers still refused
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.allow()

    def test_half_open_probe_failure_reopens(self):
        clock = _FakeClock()
        breaker = CircuitBreaker(failure_threshold=3, reset_timeout_s=10.0,
                                 clock=clock)
        for _ in range(3):
            breaker.record_failure()
        clock.advance(10.0)
        assert breaker.allow()
        breaker.record_failure()     # the probe fails: straight back open
        assert breaker.state == "open"
        assert breaker.trips == 2
        assert not breaker.allow()

    def test_success_resets_the_streak(self):
        breaker = CircuitBreaker(failure_threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == "closed"  # never two *consecutive* failures

    def test_flow_control_answers_do_not_count_as_transport_failures(self):
        # 503 means the service answered; the breaker must stay closed.
        breaker = CircuitBreaker(failure_threshold=2)
        client, _ = _client([(503, {})] * 10,
                            policy=RetryPolicy(max_attempts=5), breaker=breaker)
        status, _ = client({})
        assert status == 503
        assert breaker.state == "closed"
        assert breaker.trips == 0

    def test_bad_knobs_rejected(self):
        with pytest.raises(ConfigurationError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ConfigurationError):
            CircuitBreaker(reset_timeout_s=0.0)


class TestBackoffBounds:
    @given(seed=st.integers(0, 2**32 - 1),
           max_attempts=st.integers(1, 12),
           base_s=st.floats(0.001, 1.0),
           cap_factor=st.floats(1.0, 20.0))
    def test_total_backoff_is_bounded(self, seed, max_attempts, base_s,
                                      cap_factor):
        policy = RetryPolicy(
            max_attempts=max_attempts, base_s=base_s, cap_s=base_s * cap_factor
        )
        schedule = backoff_schedule(policy, random.Random(seed))
        delays = [next(schedule) for _ in range(max_attempts - 1)]
        assert all(0.0 <= d <= policy.cap_s for d in delays)
        # 1e-9 relative slack: summation rounding, not a real overshoot.
        bound = (max_attempts - 1) * policy.cap_s
        assert sum(delays) <= bound * (1.0 + 1e-9)

    @given(seed=st.integers(0, 2**32 - 1))
    def test_client_total_sleep_is_bounded(self, seed):
        policy = RetryPolicy(max_attempts=6, base_s=0.01, cap_s=0.5)
        client = RetryingClient(
            _ScriptedTransport([(503, {})] * 10),
            policy=policy,
            rng=random.Random(seed),
            sleep=lambda d: None,
        )
        client({})
        bound = (policy.max_attempts - 1) * policy.cap_s
        assert client.slept_s <= bound * (1.0 + 1e-9)


class TestRetryAfter:
    """The server's pacing hint: a floor on the next delay, never a storm."""

    def _policy(self, **kwargs):
        defaults = dict(max_attempts=3, base_s=0.01, cap_s=5.0)
        defaults.update(kwargs)
        return RetryPolicy(**defaults)

    def test_hint_floors_the_jittered_delay(self):
        client, sleeps = _client(
            [(503, {"retry_after_s": 2.0}), (200, {"ok": True})],
            policy=self._policy(),
        )
        status, _ = client({})
        assert status == 200
        # the jittered delay from base 0.01 is far below 2.0
        assert sleeps == [2.0]

    def test_cap_still_bounds_an_absurd_hint(self):
        client, sleeps = _client(
            [(503, {"retry_after_s": 100.0}), (200, {"ok": True})],
            policy=self._policy(cap_s=0.5),
        )
        client({})
        assert sleeps == [0.5]
        bound = (client.policy.max_attempts - 1) * client.policy.cap_s
        assert client.slept_s <= bound

    def test_honor_retry_after_false_ignores_the_hint(self):
        client, sleeps = _client(
            [(503, {"retry_after_s": 2.0}), (200, {"ok": True})],
            policy=self._policy(honor_retry_after=False),
        )
        client({})
        assert sleeps and sleeps[0] < 1.0

    def test_non_numeric_and_nonpositive_hints_are_ignored(self):
        for bad in ("soon", True, 0, -3, None):
            client, sleeps = _client(
                [(503, {"retry_after_s": bad}), (200, {"ok": True})],
                policy=self._policy(),
            )
            client({})
            assert sleeps and sleeps[0] < 1.0, f"hint {bad!r} was honored"

    def test_honored_hint_is_counted(self):
        from repro.obs.registry import Registry

        registry = Registry()
        client, _ = _client(
            [(503, {"retry_after_s": 2.0}), (200, {"ok": True})],
            policy=self._policy(),
            obs=registry,
        )
        client({})
        counters = registry.snapshot()["counters"]
        assert counters["client.retry_after_honored"] == 1

    def test_transport_error_clears_the_stale_hint(self):
        """A hint from attempt 1 must not pace attempt 3 after a socket error."""
        client, sleeps = _client(
            [
                (503, {"retry_after_s": 2.0}),
                ConnectionError("reset"),
                (200, {"ok": True}),
            ],
            policy=self._policy(max_attempts=4),
        )
        status, _ = client({})
        assert status == 200
        assert sleeps[0] == 2.0
        assert sleeps[1] < 1.0  # hint no longer applies
