"""Checkpoint/resume: content-addressed journals survive crashes.

The contract under test: a journal record, once ``record()`` returns,
is the cell's answer — bit-identical to recomputation — while any torn
or corrupted record degrades to a *miss* (recompute), never a wrong
hit.  Resume is exercised end to end through ``run_many(...,
checkpoint=dir)`` and the experiment drivers wired on top of it.
"""

import json

import pytest

from repro.experiments.checkpoint import (
    JOURNAL_NAME,
    CheckpointJournal,
    canonical_spec_payload,
    gc_journal,
    spec_fingerprint,
)
from repro.experiments.runner import RunSpec, run_many
from repro.faults.chaos import tear_file
from repro.faults.guards import GuardConfig
from repro.faults.injectors import make_injector
from repro.faults.layer import FaultLayer
from repro.tasks.generation import GaussianModel
from repro.workloads.registry import get_workload


def _spec(seed=1, scheduler="lpfps", duration=9_600.0):
    taskset = get_workload("cnc").prioritized()
    return RunSpec(
        taskset=taskset,
        scheduler=scheduler,
        seed=seed,
        execution_model=GaussianModel(),
        duration=duration,
    )


def _sig(result):
    """repr-exact identity of one cell result (the bit-identity oracle)."""
    return (
        repr(result.energy.total),
        repr(result.average_power),
        result.jobs_completed,
        result.context_switches,
        result.sleep_entries,
        result.speed_changes,
        len(result.deadline_misses),
    )


class TestFingerprint:
    def test_equal_specs_share_a_fingerprint(self):
        assert spec_fingerprint(_spec()) == spec_fingerprint(_spec())

    def test_every_result_determining_knob_participates(self):
        base = spec_fingerprint(_spec())
        assert spec_fingerprint(_spec(seed=2)) != base
        assert spec_fingerprint(_spec(scheduler="fps")) != base
        assert spec_fingerprint(_spec(duration=4_800.0)) != base

    def test_callable_scheduler_is_opaque(self):
        spec = _spec()
        opaque = RunSpec(
            taskset=spec.taskset,
            scheduler=lambda: None,
            execution_model=GaussianModel(),
            duration=9_600.0,
        )
        assert canonical_spec_payload(opaque) is None
        assert spec_fingerprint(opaque) is None

    def test_fault_layer_is_content_addressed(self):
        def layer(seed):
            return FaultLayer(
                injectors=[make_injector("wcet-overrun", intensity=0.2)],
                guards=GuardConfig(),
                seed=seed,
            )

        spec = _spec()
        with_faults = RunSpec(
            taskset=spec.taskset,
            scheduler="lpfps",
            execution_model=GaussianModel(),
            duration=9_600.0,
            faults=layer(7),
        )
        fp = spec_fingerprint(with_faults)
        assert fp is not None
        assert fp != spec_fingerprint(spec)
        rebuilt = RunSpec(
            taskset=spec.taskset,
            scheduler="lpfps",
            execution_model=GaussianModel(),
            duration=9_600.0,
            faults=layer(7),
        )
        assert spec_fingerprint(rebuilt) == fp
        reseeded = RunSpec(
            taskset=spec.taskset,
            scheduler="lpfps",
            execution_model=GaussianModel(),
            duration=9_600.0,
            faults=layer(8),
        )
        assert spec_fingerprint(reseeded) != fp

    def test_fault_factory_is_opaque(self):
        spec = _spec()
        factory_spec = RunSpec(
            taskset=spec.taskset,
            scheduler="lpfps",
            execution_model=GaussianModel(),
            duration=9_600.0,
            faults=lambda: None,
        )
        assert spec_fingerprint(factory_spec) is None


class TestJournal:
    def test_roundtrip(self, tmp_path):
        spec = _spec()
        (result,) = run_many([spec], jobs=1)
        journal = CheckpointJournal(tmp_path)
        assert journal.record(spec_fingerprint(spec), result)
        journal.close()
        loaded = CheckpointJournal(tmp_path).load()
        assert _sig(loaded[spec_fingerprint(spec)]) == _sig(result)

    def test_torn_tail_keeps_intact_prefix(self, tmp_path):
        specs = [_spec(seed=s) for s in (1, 2, 3)]
        with CheckpointJournal(tmp_path) as journal:
            results = run_many(specs, jobs=1)
            for spec, result in zip(specs, results):
                assert journal.record(spec_fingerprint(spec), result)
        path = tmp_path / JOURNAL_NAME
        lines = path.read_bytes().splitlines(keepends=True)
        # Tear mid-way through the last record, as a SIGKILL mid-append
        # would: the two committed records must still load.
        path.write_bytes(b"".join(lines[:2]) + lines[2][: len(lines[2]) // 2])
        loaded = CheckpointJournal(tmp_path).load()
        assert set(loaded) == {spec_fingerprint(s) for s in specs[:2]}

    def test_checksum_mismatch_is_a_miss_never_a_wrong_hit(self, tmp_path):
        spec = _spec()
        (result,) = run_many([spec], jobs=1)
        with CheckpointJournal(tmp_path) as journal:
            journal.record(spec_fingerprint(spec), result)
        path = tmp_path / JOURNAL_NAME
        record = json.loads(path.read_text())
        record["sha"] = "0" * 64
        path.write_text(json.dumps(record) + "\n")
        assert CheckpointJournal(tmp_path).load() == {}

    def test_torn_file_never_yields_wrong_results(self, tmp_path):
        spec = _spec()
        (result,) = run_many([spec], jobs=1)
        with CheckpointJournal(tmp_path) as journal:
            journal.record(spec_fingerprint(spec), result)
        path = tmp_path / JOURNAL_NAME
        tear_file(path, seed=5)
        loaded = CheckpointJournal(tmp_path).load()
        # Either the record survived intact (tear hit a later byte than
        # its newline) or it is gone — it is never a corrupted hit.
        assert set(loaded) <= {spec_fingerprint(spec)}
        for value in loaded.values():
            assert _sig(value) == _sig(result)

    def test_missing_journal_is_empty(self, tmp_path):
        journal = CheckpointJournal(tmp_path / "nowhere")
        assert journal.load() == {}
        assert len(journal) == 0


class TestRunManyCheckpoint:
    def test_first_run_stores_second_run_hits(self, tmp_path):
        specs = [_spec(seed=s) for s in (1, 2, 3)]
        first = run_many(specs, jobs=1, checkpoint=tmp_path)
        assert all(r.metadata["checkpoint"] == "stored" for r in first)
        second = run_many([_spec(seed=s) for s in (1, 2, 3)], jobs=1, checkpoint=tmp_path)
        assert all(r.metadata["checkpoint"] == "hit" for r in second)
        assert [_sig(r) for r in second] == [_sig(r) for r in first]

    def test_resume_recomputes_only_missing_cells(self, tmp_path):
        # Phase 1: a "crashed" campaign that only finished two cells.
        done = [_spec(seed=s) for s in (1, 2)]
        run_many(done, jobs=1, checkpoint=tmp_path)
        # Phase 2: the full campaign resumes over the same journal.
        full = [_spec(seed=s) for s in (1, 2, 3, 4)]
        results = run_many(full, jobs=1, checkpoint=tmp_path)
        states = [r.metadata["checkpoint"] for r in results]
        assert states == ["hit", "hit", "stored", "stored"]
        reference = run_many([_spec(seed=s) for s in (1, 2, 3, 4)], jobs=1)
        assert [_sig(r) for r in results] == [_sig(r) for r in reference]

    def test_checkpointed_results_match_uncheckpointed(self, tmp_path):
        specs = [_spec(seed=s) for s in (1, 2)]
        checkpointed = run_many(specs, jobs=1, checkpoint=tmp_path)
        plain = run_many([_spec(seed=s) for s in (1, 2)], jobs=1)
        assert [_sig(r) for r in checkpointed] == [_sig(r) for r in plain]

    def test_pool_path_checkpoints_too(self, tmp_path):
        specs = [_spec(seed=s) for s in (1, 2, 3, 4)]
        first = run_many(specs, jobs=2, checkpoint=tmp_path)
        assert all(r.metadata["checkpoint"] == "stored" for r in first)
        second = run_many(
            [_spec(seed=s) for s in (1, 2, 3, 4)], jobs=2, checkpoint=tmp_path
        )
        assert all(r.metadata["checkpoint"] == "hit" for r in second)
        assert [_sig(r) for r in second] == [_sig(r) for r in first]

    def test_opaque_cells_run_uncheckpointed(self, tmp_path):
        from repro.schedulers.registry import make_scheduler

        def factory():
            return make_scheduler("fps")

        spec = _spec()
        opaque = RunSpec(
            taskset=spec.taskset,
            scheduler=factory,
            execution_model=GaussianModel(),
            duration=9_600.0,
        )
        results = run_many([opaque], jobs=1, checkpoint=tmp_path)
        assert "checkpoint" not in results[0].metadata
        assert not (tmp_path / JOURNAL_NAME).exists()

    def test_checkpoint_counters_in_obs(self, tmp_path):
        from repro.obs.registry import Registry, installed

        specs = [_spec(seed=s) for s in (1, 2)]
        registry = Registry()
        with installed(registry):
            run_many(specs, jobs=1, checkpoint=tmp_path)
        assert registry.counter_value("runner.checkpoint_stored") == 2
        registry2 = Registry()
        with installed(registry2):
            run_many([_spec(seed=s) for s in (1, 2)], jobs=1, checkpoint=tmp_path)
        assert registry2.counter_value("runner.checkpoint_hits") == 2


class TestExperimentWiring:
    def test_figure8_resumes_from_checkpoint(self, tmp_path):
        from repro.experiments.figure8 import run_figure8

        kwargs = dict(ratios=(0.5,), seeds=(1,), duration=9_600.0)
        first = run_figure8("cnc", checkpoint=tmp_path, **kwargs)
        journal = CheckpointJournal(tmp_path)
        stored = len(journal)
        assert stored == 2  # FPS + LPFPS at one ratio, one seed
        second = run_figure8("cnc", checkpoint=tmp_path, **kwargs)
        assert len(journal) == stored  # nothing recomputed, nothing re-stored
        for p1, p2 in zip(first.points, second.points):
            assert repr(p1.fps_power) == repr(p2.fps_power)
            assert repr(p1.lpfps_power) == repr(p2.lpfps_power)

    def test_campaign_accepts_checkpoint(self, tmp_path):
        from repro.faults.campaign import run_campaign
        from repro.workloads.example_dac99 import example_taskset

        kwargs = dict(policies=("fps", "lpfps"), seeds=(1,), duration=2_000.0)
        first = run_campaign(
            example_taskset(), "wcet-overrun", 0.2, checkpoint=tmp_path, **kwargs
        )
        assert len(CheckpointJournal(tmp_path)) > 0
        second = run_campaign(
            example_taskset(), "wcet-overrun", 0.2, checkpoint=tmp_path, **kwargs
        )
        for o1, o2 in zip(first.outcomes, second.outcomes):
            assert repr(o1.power) == repr(o2.power)
            assert repr(o1.baseline_power) == repr(o2.baseline_power)


class TestJournalGc:
    """`lpfps checkpoint gc`: compaction of the append-only journal."""

    def _fill(self, tmp_path, records):
        with CheckpointJournal(tmp_path) as journal:
            for fp, value in records:
                assert journal.record(fp, value)

    def test_superseded_duplicates_drop_later_wins(self, tmp_path):
        self._fill(
            tmp_path,
            [("fp-a", {"v": 1}), ("fp-b", {"v": 2}), ("fp-a", {"v": 3})],
        )
        report = gc_journal(tmp_path)
        assert (report.lines_total, report.kept) == (3, 2)
        assert (report.superseded, report.corrupt) == (1, 0)
        loaded = CheckpointJournal(tmp_path).load()
        assert loaded == {"fp-a": {"v": 3}, "fp-b": {"v": 2}}
        # Compaction is idempotent.
        again = gc_journal(tmp_path)
        assert again.dropped == 0 and again.kept == 2

    def test_torn_tail_is_dropped(self, tmp_path):
        self._fill(tmp_path, [("fp-a", {"v": 1}), ("fp-b", {"v": 2})])
        path = tmp_path / JOURNAL_NAME
        lines = path.read_bytes().splitlines(keepends=True)
        path.write_bytes(b"".join(lines) + lines[0][: len(lines[0]) // 2])
        report = gc_journal(tmp_path)
        assert report.corrupt == 1
        assert report.kept == 2
        assert set(CheckpointJournal(tmp_path).load()) == {"fp-a", "fp-b"}

    def test_gc_preserves_what_load_returns(self, tmp_path):
        spec = _spec()
        (result,) = run_many([spec], jobs=1)
        fp = spec_fingerprint(spec)
        with CheckpointJournal(tmp_path) as journal:
            journal.record(fp, result)
            journal.record(fp, result)  # overlapping-campaign duplicate
        before = CheckpointJournal(tmp_path).load()
        gc_journal(tmp_path)
        after = CheckpointJournal(tmp_path).load()
        assert set(after) == set(before) == {fp}
        assert _sig(after[fp]) == _sig(result)

    def test_dry_run_touches_nothing(self, tmp_path):
        self._fill(tmp_path, [("fp-a", {"v": 1}), ("fp-a", {"v": 2})])
        path = tmp_path / JOURNAL_NAME
        raw = path.read_bytes()
        report = gc_journal(tmp_path, dry_run=True)
        assert report.dry_run
        assert report.superseded == 1
        assert report.bytes_after < report.bytes_before
        assert path.read_bytes() == raw

    def test_missing_journal_reports_empty(self, tmp_path):
        report = gc_journal(tmp_path)
        assert report.lines_total == 0
        assert not (tmp_path / JOURNAL_NAME).exists()

    def test_not_a_directory_is_a_configuration_error(self, tmp_path):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            gc_journal(tmp_path / "nowhere")

    def test_cli_gc_and_dry_run(self, tmp_path, capsys):
        from repro.cli import main

        self._fill(
            tmp_path,
            [("fp-a", {"v": 1}), ("fp-a", {"v": 2}), ("fp-b", {"v": 3})],
        )
        path = tmp_path / JOURNAL_NAME
        raw = path.read_bytes()
        assert main(["checkpoint", "gc", str(tmp_path), "--dry-run"]) == 0
        out = capsys.readouterr().out
        assert "dry run" in out
        assert path.read_bytes() == raw
        assert main(["checkpoint", "gc", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "kept:               2" in out
        assert CheckpointJournal(tmp_path).load() == {
            "fp-a": {"v": 2}, "fp-b": {"v": 3},
        }

    def test_cli_gc_bad_directory_exits_nonzero(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["checkpoint", "gc", str(tmp_path / "nope")]) == 1


class TestCliWiring:
    @pytest.mark.parametrize("flag", ["--checkpoint", "--resume"])
    def test_figure8_cli_flags_parse(self, flag, tmp_path):
        from repro.cli import build_parser

        args = build_parser().parse_args(["figure8", flag, str(tmp_path)])
        assert args.checkpoint == str(tmp_path)

    @pytest.mark.parametrize("flag", ["--checkpoint", "--resume"])
    def test_faults_cli_flags_parse(self, flag, tmp_path):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["faults", "--workload", "cnc", flag, str(tmp_path)]
        )
        assert args.checkpoint == str(tmp_path)
