"""Unit tests for the infra-chaos injectors themselves.

Kill-worker plans are only ever *executed* under a process pool (see
test_supervisor.py); here we test the safe halves in-process: plan
construction, kill-once marker semantics (a marker that already exists
means "run clean"), seeded determinism of the torn-write and flaky
transport helpers, and the PR-1 zero-intensity no-op rule.
"""

import time

import pytest

from repro.errors import ConfigurationError
from repro.experiments.checkpoint import spec_fingerprint
from repro.experiments.runner import RunSpec
from repro.faults.chaos import (
    CELL_CHAOS_TYPES,
    apply_cell_chaos,
    flaky_transport,
    kill_worker,
    slow_cell,
    tear_file,
    with_chaos,
)
from repro.tasks.generation import GaussianModel
from repro.workloads.registry import get_workload


class TestPlans:
    def test_kill_worker_plan_is_a_plain_dict(self, tmp_path):
        plan = kill_worker(marker=tmp_path / "m")
        assert plan["type"] == "kill-worker"
        assert plan["marker"] == str(tmp_path / "m")
        assert plan["type"] in CELL_CHAOS_TYPES

    def test_slow_cell_rejects_negative_delay(self):
        with pytest.raises(ConfigurationError):
            slow_cell(-0.1)

    def test_unknown_plan_type_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown chaos plan"):
            apply_cell_chaos({"type": "set-fire-to-rack"})

    def test_with_chaos_none_is_a_strict_noop(self):
        spec = RunSpec(
            taskset=get_workload("cnc").prioritized(), scheduler="lpfps"
        )
        assert with_chaos(spec, None) is spec

    def test_with_chaos_copies_and_leaves_fingerprint_alone(self, tmp_path):
        spec = RunSpec(
            taskset=get_workload("cnc").prioritized(),
            scheduler="lpfps",
            execution_model=GaussianModel(),
            duration=9_600.0,
        )
        chaotic = with_chaos(spec, kill_worker(marker=tmp_path / "m"))
        assert chaotic is not spec
        assert "chaos" not in spec.extra
        assert chaotic.extra["chaos"]["type"] == "kill-worker"
        # Chaos is infrastructure, not content: the cell computes the
        # same result (kill-once recovers, slow-cell just waits), so it
        # shares the original's checkpoint identity.
        assert spec_fingerprint(chaotic) == spec_fingerprint(spec)

    def test_kill_once_marker_present_means_run_clean(self, tmp_path):
        marker = tmp_path / "fired"
        marker.touch()
        # Would SIGKILL this test process if the marker were ignored.
        apply_cell_chaos(kill_worker(marker=marker))

    def test_slow_cell_sleeps(self):
        t0 = time.perf_counter()
        apply_cell_chaos(slow_cell(0.05))
        assert time.perf_counter() - t0 >= 0.05


class TestTearFile:
    def test_tear_strictly_shortens(self, tmp_path):
        path = tmp_path / "f"
        path.write_bytes(b"x" * 100)
        cut = tear_file(path, seed=3)
        assert 1 <= cut <= 99
        assert path.stat().st_size == cut

    def test_tear_is_seed_deterministic(self, tmp_path):
        a, b = tmp_path / "a", tmp_path / "b"
        a.write_bytes(b"y" * 1000)
        b.write_bytes(b"y" * 1000)
        assert tear_file(a, seed=11) == tear_file(b, seed=11)

    def test_tiny_file_truncates_to_zero(self, tmp_path):
        path = tmp_path / "one"
        path.write_bytes(b"z")
        assert tear_file(path, seed=0) == 0
        assert path.stat().st_size == 0


class TestFlakyTransport:
    @staticmethod
    def _ok(request):
        return 200, {"ok": True}

    def test_rate_zero_returns_send_itself(self):
        assert flaky_transport(self._ok, 0.0) is self._ok

    def test_rate_one_always_raises(self):
        flaky = flaky_transport(self._ok, 1.0, seed=1)
        for _ in range(5):
            with pytest.raises(ConnectionError):
                flaky({})

    def test_seeded_failure_sequence_is_reproducible(self):
        def outcomes(seed):
            flaky = flaky_transport(self._ok, 0.5, seed=seed)
            out = []
            for _ in range(20):
                try:
                    flaky({})
                    out.append("ok")
                except ConnectionError:
                    out.append("drop")
            return out

        assert outcomes(7) == outcomes(7)
        assert "ok" in outcomes(7) and "drop" in outcomes(7)

    def test_rate_out_of_range_rejected(self):
        for rate in (-0.1, 1.5):
            with pytest.raises(ConfigurationError):
                flaky_transport(self._ok, rate)
