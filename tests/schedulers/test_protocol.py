"""Registry-wide conformance to the Scheduler contract.

The kernel reads the policy surface directly — ``name``,
``run_queue_key``, ``requires_priorities``, ``tick_interval``,
``setup``, ``schedule`` — with no ``getattr`` fallbacks, so every
registered policy must carry every member with a sane type.  These tests
pin that for the whole registry, plus the abstractness of the base class
and the setup hook actually being invoked.
"""

import inspect

import pytest

from repro.schedulers.base import Scheduler
from repro.schedulers.registry import available_schedulers, make_scheduler
from repro.sim.dispatch import Scheduler as DispatchScheduler
from repro.sim.engine import simulate
from repro.workloads.registry import get_workload

ALL_NAMES = available_schedulers()


def example_taskset():
    return get_workload("example").prioritized()


class TestContractSurface:
    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_is_scheduler_subclass(self, name):
        scheduler = make_scheduler(name)
        assert isinstance(scheduler, Scheduler)

    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_name_is_nonempty_string(self, name):
        scheduler = make_scheduler(name)
        assert isinstance(scheduler.name, str)
        assert scheduler.name

    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_run_queue_key_is_callable(self, name):
        scheduler = make_scheduler(name)
        assert callable(scheduler.run_queue_key)

    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_requires_priorities_is_bool(self, name):
        scheduler = make_scheduler(name)
        assert isinstance(scheduler.requires_priorities, bool)

    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_tick_interval_is_none_or_positive(self, name):
        scheduler = make_scheduler(name)
        tick = scheduler.tick_interval
        assert tick is None or (isinstance(tick, float) and tick > 0)

    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_setup_accepts_kernel(self, name):
        scheduler = make_scheduler(name)
        sig = inspect.signature(scheduler.setup)
        assert len(sig.parameters) == 1

    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_schedule_is_concrete(self, name):
        scheduler = make_scheduler(name)
        assert not getattr(scheduler.schedule, "__isabstractmethod__", False)

    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_fastforward_safe_is_bool(self, name):
        scheduler = make_scheduler(name)
        assert isinstance(scheduler.fastforward_safe, bool)

    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_fastforward_signature_accepts_now(self, name):
        # The default returns None (a stateless claim); stateful policies
        # return a comparable snapshot.  Either way the call must work at
        # an arbitrary instant on a fresh policy.
        scheduler = make_scheduler(name)
        scheduler.fastforward_signature(0.0)

    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_fast_forward_accepts_shift(self, name):
        scheduler = make_scheduler(name)
        scheduler.fast_forward(7200.0, {})


class TestBaseClass:
    def test_base_is_abstract(self):
        with pytest.raises(TypeError):
            Scheduler()

    def test_base_reexport_is_the_kernel_class(self):
        assert Scheduler is DispatchScheduler

    def test_base_defaults(self):
        assert Scheduler.requires_priorities is True
        assert Scheduler.tick_interval is None
        assert Scheduler.fastforward_safe is True

    def test_setup_is_invoked_before_first_decision(self):
        calls = []

        class Probe(Scheduler):
            name = "probe"

            def setup(self, kernel):
                calls.append(("setup", kernel.now))

            def schedule(self, kernel, event):
                if not any(c[0] == "schedule" for c in calls):
                    calls.append(("schedule", kernel.now))
                kernel.move_due_releases()
                from repro.sim.events import Decision

                job = kernel.active_job
                if job is None and kernel.run_queue.peek() is not None:
                    job = kernel.run_queue.pop()
                return Decision(run=job)

        simulate(example_taskset(), Probe(), duration=400.0)
        assert calls[0][0] == "setup"
        assert calls[1][0] == "schedule"


class TestEndToEnd:
    @pytest.mark.parametrize("name", [n for n in ALL_NAMES if n != "yds"])
    def test_registry_policy_completes_a_run(self, name):
        result = simulate(
            example_taskset(),
            make_scheduler(name),
            duration=400.0,
            on_miss="record",
        )
        assert result.jobs_completed > 0
