"""Behavioural tests for the cycle-conserving EDF extension baseline."""

import pytest

from repro.core.lpfps import LpfpsScheduler
from repro.schedulers.cycle_conserving import CcEdfScheduler
from repro.schedulers.edf import AvrScheduler
from repro.schedulers.fps import FpsScheduler
from repro.sim.engine import simulate
from repro.sim.validate import validate_trace
from repro.tasks.generation import GaussianModel, WcetModel
from repro.tasks.priority import rate_monotonic
from repro.tasks.task import Task, TaskSet
from repro.workloads.registry import TABLE2_NAMES, get_workload


class TestCorrectness:
    @pytest.mark.parametrize("app", TABLE2_NAMES)
    def test_no_misses_on_paper_workloads(self, app):
        ts = get_workload(app).prioritized().with_bcet_ratio(0.3)
        result = simulate(ts, CcEdfScheduler(), execution_model=GaussianModel(),
                          duration=1_000_000.0, seed=2, on_miss="record")
        assert not result.missed

    def test_no_misses_at_full_wcet(self):
        ts = get_workload("flight_control").prioritized()
        result = simulate(ts, CcEdfScheduler(), execution_model=WcetModel(),
                          duration=ts.hyperperiod, on_miss="record")
        assert not result.missed

    def test_trace_structurally_valid(self):
        ts = get_workload("cnc").prioritized().with_bcet_ratio(0.5)
        result = simulate(ts, CcEdfScheduler(), execution_model=GaussianModel(),
                          duration=100_000.0, seed=3, record_trace=True,
                          on_miss="record")
        violations = validate_trace(result.trace, ts, check_priorities=False,
                                    check_slowdown_exclusive=False)
        assert violations == []


class TestReclamation:
    def test_degenerates_to_avr_at_wcet(self):
        """With every job at its WCET the estimates never drop, so ccEDF
        equals the static utilisation speed (AVR)."""
        ts = get_workload("ins").prioritized()
        cc = simulate(ts, CcEdfScheduler(), execution_model=WcetModel(),
                      duration=1_000_000.0, on_miss="record")
        avr = simulate(ts, AvrScheduler(), execution_model=WcetModel(),
                       duration=1_000_000.0, on_miss="record")
        assert cc.average_power == pytest.approx(avr.average_power, rel=0.02)

    def test_beats_avr_with_variation(self):
        """The whole point: actual execution times feed back into speed."""
        ts = get_workload("ins").prioritized().with_bcet_ratio(0.2)
        kwargs = dict(execution_model=GaussianModel(),
                      duration=2_000_000.0, seed=1, on_miss="record")
        cc = simulate(ts, CcEdfScheduler(), **kwargs)
        avr = simulate(ts, AvrScheduler(), **kwargs)
        assert not cc.missed
        assert cc.average_power < avr.average_power

    def test_beats_fps_and_lpfps_on_spread_utilization(self):
        """Where LPFPS's run-queue-empty precondition rarely holds, ccEDF
        keeps reclaiming — the successor's structural advantage."""
        ts = get_workload("avionics").prioritized().with_bcet_ratio(0.5)
        kwargs = dict(execution_model=GaussianModel(),
                      duration=2_000_000.0, seed=1, on_miss="record")
        cc = simulate(ts, CcEdfScheduler(), **kwargs)
        lp = simulate(ts, LpfpsScheduler(), **kwargs)
        fps = simulate(ts, FpsScheduler(), **kwargs)
        assert cc.average_power < lp.average_power < fps.average_power

    def test_speed_recovers_on_release(self):
        """A new release restores the worst-case estimate for its task."""
        ts = rate_monotonic(TaskSet([
            Task(name="a", wcet=40.0, period=100.0, bcet=4.0),
        ]))

        class Short(WcetModel):
            def sample(self, task, rng):
                return 4.0

        result = simulate(ts, CcEdfScheduler(), execution_model=Short(),
                          duration=300.0, record_trace=True,
                          on_miss="record")
        speeds = [s.speed_start for s in result.trace.segments
                  if s.state == "run"]
        # Every job dispatches at the full worst-case utilisation (0.4):
        # the cheap previous instance must not carry over to the release.
        assert all(s >= 0.4 - 1e-9 for s in speeds)

    def test_no_powerdown_variant(self):
        ts = get_workload("cnc").prioritized()
        result = simulate(ts, CcEdfScheduler(use_powerdown=False),
                          duration=50_000.0, on_miss="record")
        assert result.sleep_entries == 0
