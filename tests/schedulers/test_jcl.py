"""Job-class-level scheduler: registration, FPS equivalence, alternation.

The load-bearing property: with no constraints every task is hard, no
job is ever demoted, and JCL's dispatch is *identical* to FPS — that is
what lets the golden fixtures pin it.  With constraints, a task on a
full hit streak is demoted below every urgent job, which is what buys
the (m,k) alternation on an overloaded task set.
"""

import pytest

from repro.analysis.weakly_hard import check_result
from repro.errors import ConfigurationError
from repro.faults.guards import GuardConfig
from repro.faults.layer import FaultLayer
from repro.schedulers.jcl import JclScheduler
from repro.schedulers.registry import (
    WEAKLY_HARD_SCHEDULERS,
    available_schedulers,
    make_scheduler,
    scheduler_capabilities,
)
from repro.sim.engine import simulate
from repro.tasks.generation import WcetModel
from repro.tasks.priority import rate_monotonic
from repro.tasks.task import Task, TaskSet
from repro.workloads.registry import get_workload


def _pair(constraints=None):
    taskset = rate_monotonic(
        TaskSet(
            [
                Task("stream_a", wcet=600.0, period=1000.0),
                Task("stream_b", wcet=600.0, period=1000.0),
            ],
            name="pair",
        )
    )
    return taskset, JclScheduler(constraints=constraints)


def _run(taskset, scheduler, duration):
    return simulate(
        taskset,
        scheduler,
        execution_model=WcetModel(),
        duration=duration,
        on_miss="record",
        faults=FaultLayer(guards=GuardConfig(miss_policy="abort")),
    )


class TestRegistration:
    def test_registered(self):
        assert "jcl" in available_schedulers()
        assert isinstance(make_scheduler("jcl"), JclScheduler)

    def test_capability_flags(self):
        assert WEAKLY_HARD_SCHEDULERS == {"jcl"}
        by_name = {row["name"]: row for row in scheduler_capabilities()}
        assert by_name["jcl"]["weakly_hard"] is True
        assert by_name["jcl"]["requires_priorities"] is True
        assert by_name["fps"]["weakly_hard"] is False

    def test_rejects_unknown_constraint_names(self):
        taskset = get_workload("example").prioritized()
        scheduler = JclScheduler(constraints={"ghost": (1, 2)})
        with pytest.raises(ConfigurationError, match="ghost"):
            simulate(taskset, scheduler, duration=400.0)


class TestFpsEquivalence:
    @pytest.mark.parametrize("app", ["example", "ins"])
    def test_unconstrained_jcl_matches_fps(self, app):
        workload = get_workload(app)
        duration = min(workload.taskset.hyperperiod, 5_000_000.0)
        results = {}
        for name in ("fps", "jcl"):
            taskset = workload.prioritized().with_bcet_ratio(0.5)
            result = simulate(
                taskset,
                make_scheduler(name),
                duration=duration,
                seed=7,
                on_miss="record",
            )
            results[name] = result
        fps, jcl = results["fps"], results["jcl"]
        assert jcl.jobs_completed == fps.jobs_completed
        assert jcl.preemptions == fps.preemptions
        assert jcl.energy == pytest.approx(fps.energy)
        assert len(jcl.deadline_misses) == len(fps.deadline_misses)


class TestAlternation:
    def test_overloaded_pair_alternates_misses(self):
        constraints = {"stream_a": (1, 2), "stream_b": (1, 2)}
        taskset, scheduler = _pair(constraints)
        duration = taskset.hyperperiod * 6
        result = _run(taskset, scheduler, duration)
        windows = check_result(result, taskset, constraints, duration)
        assert windows == {"stream_a": None, "stream_b": None}
        # The overload is real: the processor cannot hit every deadline.
        assert result.deadline_misses

    def test_fps_on_the_same_pair_violates(self):
        constraints = {"stream_a": (1, 2), "stream_b": (1, 2)}
        taskset, _ = _pair()
        duration = taskset.hyperperiod * 6
        result = _run(taskset, make_scheduler("fps"), duration)
        windows = check_result(result, taskset, constraints, duration)
        assert windows["stream_b"] == 0

    def test_fresh_scheduler_instances_are_independent(self):
        constraints = {"stream_a": (1, 2), "stream_b": (1, 2)}
        taskset, scheduler = _pair(constraints)
        duration = taskset.hyperperiod * 4
        first = _run(taskset, scheduler, duration)
        taskset2, scheduler2 = _pair(constraints)
        second = _run(taskset2, scheduler2, duration)
        assert first.energy == pytest.approx(second.energy)
        assert len(first.deadline_misses) == len(second.deadline_misses)
