"""Behavioural tests for the static-DVS FPS baseline."""

import pytest

from repro.schedulers.fps import FpsScheduler
from repro.schedulers.static_dvs import StaticDvsFps
from repro.sim.engine import Simulator, simulate
from repro.tasks.priority import rate_monotonic
from repro.tasks.task import Task, TaskSet
from repro.workloads.example_dac99 import example_taskset
from repro.workloads.flight_control import flight_control_taskset


class TestStaticSpeedSelection:
    def test_zero_slack_set_stays_at_full_speed(self):
        """Table 1's breakdown factor is 1.0: no static slowdown exists."""
        sim = Simulator(example_taskset(), StaticDvsFps())
        sim.scheduler.setup(sim)
        assert sim.scheduler.static_speed == pytest.approx(1.0)

    def test_harmonic_set_slows_to_utilization(self):
        ts = rate_monotonic(flight_control_taskset())
        sim = Simulator(ts, StaticDvsFps(margin=1.0))
        sim.scheduler.setup(sim)
        # Harmonic: breakdown factor = 1/U -> static speed ~ U = 0.881.
        assert sim.scheduler.static_speed == pytest.approx(0.89, abs=0.01)

    def test_margin_raises_speed(self):
        ts = rate_monotonic(flight_control_taskset())
        tight = Simulator(ts, StaticDvsFps(margin=1.0))
        tight.scheduler.setup(tight)
        padded = Simulator(ts, StaticDvsFps(margin=1.05))
        padded.scheduler.setup(padded)
        assert padded.scheduler.static_speed >= tight.scheduler.static_speed


class TestStaticDvsRuns:
    def test_meets_deadlines_on_workloads(self):
        ts = rate_monotonic(flight_control_taskset())
        result = simulate(ts, StaticDvsFps(), duration=640_000.0)
        assert not result.missed

    def test_saves_power_vs_fps_when_slack_exists(self):
        ts = rate_monotonic(TaskSet([
            Task(name="a", wcet=10.0, period=100.0),
            Task(name="b", wcet=20.0, period=200.0),
        ]))
        static = simulate(ts, StaticDvsFps(), duration=10_000.0)
        fps = simulate(ts, FpsScheduler(), duration=10_000.0)
        assert not static.missed
        assert static.average_power < fps.average_power

    def test_no_powerdown_variant(self):
        ts = rate_monotonic(flight_control_taskset())
        result = simulate(
            ts, StaticDvsFps(use_powerdown=False), duration=640_000.0
        )
        assert result.sleep_entries == 0
