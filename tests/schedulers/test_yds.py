"""Tests for the YDS offline-optimal algorithm and oracle scheduler."""

import pytest

from repro.errors import AnalysisError, ConfigurationError
from repro.power.processor import ProcessorSpec
from repro.schedulers.yds import (
    YdsJob,
    YdsOracleScheduler,
    jobs_over_hyperperiod,
    profile_for_taskset,
    yds_profile,
)
from repro.sim.engine import simulate
from repro.tasks.priority import rate_monotonic
from repro.tasks.task import Task, TaskSet
from repro.workloads.cnc import cnc_taskset
from repro.workloads.example_dac99 import example_taskset
from repro.workloads.flight_control import flight_control_taskset


class TestCriticalIntervals:
    def test_single_job(self):
        profile = yds_profile([YdsJob("j", 0.0, 10.0, 5.0)])
        assert len(profile.intervals) == 1
        assert profile.intervals[0].speed == pytest.approx(0.5)
        assert profile.speed_of["j"] == pytest.approx(0.5)

    def test_textbook_two_jobs(self):
        """A dense job forces a fast interval; the loose one absorbs the rest."""
        jobs = [
            YdsJob("dense", 0.0, 10.0, 8.0),
            YdsJob("loose", 0.0, 100.0, 10.0),
        ]
        profile = yds_profile(jobs)
        assert profile.speed_of["dense"] == pytest.approx(0.8)
        # After compressing [0, 10], 'loose' has 90 us for 10 units.
        assert profile.speed_of["loose"] == pytest.approx(10.0 / 90.0)

    def test_nested_jobs_share_critical_interval(self):
        jobs = [
            YdsJob("a", 0.0, 20.0, 8.0),
            YdsJob("b", 5.0, 15.0, 4.0),
        ]
        profile = yds_profile(jobs)
        # Candidate [0,20] has intensity 12/20 = 0.6; [5,15] has 0.4.
        assert profile.speed_of["a"] == pytest.approx(0.6)
        assert profile.speed_of["b"] == pytest.approx(0.6)

    def test_intensities_nonincreasing(self):
        """YDS removes the *most* intense interval first."""
        profile = profile_for_taskset(example_taskset())
        speeds = [i.speed for i in profile.intervals]
        assert speeds == sorted(speeds, reverse=True)

    def test_feasible_set_peak_at_most_one(self):
        for ts in (example_taskset(), rate_monotonic(cnc_taskset()),
                   rate_monotonic(flight_control_taskset())):
            assert profile_for_taskset(ts).max_speed <= 1.0 + 1e-9

    def test_every_job_assigned(self):
        ts = example_taskset()
        profile = profile_for_taskset(ts)
        assert len(profile.speed_of) == 17  # hyperperiod job count

    def test_job_guard(self):
        jobs = [YdsJob(f"j{i}", 0.0, 1000.0, 0.1) for i in range(601)]
        with pytest.raises(AnalysisError):
            yds_profile(jobs)

    def test_energy_lower_bound_below_constant_full_speed(self):
        ts = example_taskset()
        profile = profile_for_taskset(ts)
        spec = ProcessorSpec.arm8()
        bound = profile.energy_lower_bound(spec.power, ts.hyperperiod)
        # Running the same work at full speed costs sum(C_i * jobs).
        full_speed_busy = 0.85 * ts.hyperperiod
        assert bound < full_speed_busy


class TestJobsExpansion:
    def test_counts_and_deadlines(self):
        jobs = jobs_over_hyperperiod(example_taskset())
        assert len(jobs) == 17
        tau1_jobs = [j for j in jobs if j.name.startswith("tau1")]
        assert [j.release for j in tau1_jobs] == [
            0.0, 50.0, 100.0, 150.0, 200.0, 250.0, 300.0, 350.0
        ]
        assert all(j.deadline == j.release + 50.0 for j in tau1_jobs)


class TestOracleScheduler:
    def test_meets_deadlines_at_wcet(self):
        ts = rate_monotonic(flight_control_taskset())
        result = simulate(ts, YdsOracleScheduler(), duration=ts.hyperperiod,
                          on_miss="record")
        assert not result.missed

    def test_beats_fps_and_avr_at_wcet(self):
        from repro.schedulers.edf import AvrScheduler
        from repro.schedulers.fps import FpsScheduler

        ts = rate_monotonic(cnc_taskset())
        duration = 10 * ts.hyperperiod
        yds = simulate(ts, YdsOracleScheduler(), duration=duration,
                       on_miss="record")
        fps = simulate(ts, FpsScheduler(), duration=duration)
        assert not yds.missed
        assert yds.average_power < fps.average_power

    def test_matches_analytic_bound_on_ideal_processor(self):
        """At WCET demands on an ideal processor, the oracle's measured
        power approaches the analytic YDS lower bound."""
        ts = rate_monotonic(cnc_taskset())
        profile = profile_for_taskset(ts)
        spec = ProcessorSpec.ideal()
        bound = profile.energy_lower_bound(spec.power, ts.hyperperiod)
        result = simulate(ts, YdsOracleScheduler(), spec=spec,
                          duration=ts.hyperperiod, on_miss="record")
        assert not result.missed
        assert result.energy.total == pytest.approx(bound, rel=0.02)
        assert result.energy.total >= bound - 1e-6

    def test_rejects_phased_tasksets(self):
        ts = TaskSet([Task(name="a", wcet=1.0, period=10.0, phase=2.0,
                           priority=0)])
        with pytest.raises(ConfigurationError):
            simulate(ts, YdsOracleScheduler(), duration=100.0)

    def test_rejects_infeasible_sets(self):
        ts = rate_monotonic(TaskSet([
            Task(name="a", wcet=40.0, period=50.0),
            Task(name="b", wcet=50.0, period=100.0, deadline=100.0),
        ]))
        with pytest.raises(ConfigurationError):
            simulate(ts, YdsOracleScheduler(), duration=100.0, on_miss="record")
