"""Tests for the scheduler registry."""

import pytest

from repro.core.lpfps import LpfpsScheduler
from repro.errors import ConfigurationError
from repro.schedulers.registry import available_schedulers, make_scheduler
from repro.sim.dispatch import Scheduler


class TestRegistry:
    def test_all_names_construct(self):
        for name in available_schedulers():
            scheduler = make_scheduler(name)
            assert isinstance(scheduler, Scheduler)

    def test_known_names_present(self):
        names = available_schedulers()
        for expected in ("fps", "lpfps", "lpfps-opt", "edf", "avr", "static-fps"):
            assert expected in names

    def test_case_insensitive(self):
        assert isinstance(make_scheduler("LPFPS"), LpfpsScheduler)

    def test_variant_configuration(self):
        assert make_scheduler("lpfps-opt").speed_policy == "optimal"
        assert make_scheduler("lpfps-nodvs").use_dvs is False
        assert make_scheduler("lpfps-nopd").use_powerdown is False

    def test_unknown_name_raises(self):
        with pytest.raises(ConfigurationError):
            make_scheduler("round-robin")

    def test_fresh_instance_per_call(self):
        assert make_scheduler("lpfps") is not make_scheduler("lpfps")
