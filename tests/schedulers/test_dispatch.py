"""Tests for the shared dispatch helpers against a live kernel."""

import pytest

from repro.schedulers.base import (
    Scheduler,
    earliest_deadline_dispatch,
    fixed_priority_dispatch,
)
from repro.sim.engine import Simulator
from repro.sim.events import Decision, SchedEvent
from repro.workloads.example_dac99 import example_taskset


class _Probe(Scheduler):
    """Records every dispatch decision for inspection."""

    name = "probe"

    def __init__(self):
        self.history = []

    def schedule(self, kernel, event):
        active = fixed_priority_dispatch(kernel)
        self.history.append(
            (kernel.now, event, active.name if active else None)
        )
        return Decision(run=active)


class TestFixedPriorityDispatch:
    def test_initial_dispatch_order(self):
        probe = _Probe()
        sim = Simulator(example_taskset(), probe, duration=400.0)
        sim.run()
        # At t=0 the highest-priority task runs first (Figure 3(a)).
        assert probe.history[0] == (0.0, SchedEvent.INIT, "tau1#0")

    def test_preemption_recorded_at_release(self):
        probe = _Probe()
        sim = Simulator(example_taskset(), probe, duration=400.0)
        result = sim.run()
        # tau1's second release at t=50 preempts tau3 (Figure 2(a)).
        at_50 = [h for h in probe.history if h[0] == 50.0]
        assert at_50 and at_50[0][2] == "tau1#1"
        assert result.preemptions >= 1

    def test_base_class_is_abstract(self):
        with pytest.raises(TypeError):
            Scheduler()

    def test_reexport_shim(self):
        """schedulers.base re-exports the sim.dispatch names."""
        from repro.sim import dispatch

        assert fixed_priority_dispatch is dispatch.fixed_priority_dispatch
        assert earliest_deadline_dispatch is dispatch.earliest_deadline_dispatch
