"""Behavioural tests for the EDF and AVR baselines."""

import pytest

from repro.power.processor import ProcessorSpec
from repro.schedulers.edf import AvrScheduler, EdfScheduler
from repro.schedulers.fps import FpsScheduler
from repro.sim.engine import simulate
from repro.tasks.priority import rate_monotonic
from repro.tasks.task import Task, TaskSet
from repro.workloads.example_dac99 import example_taskset


class TestEdf:
    def test_schedules_u_above_rm_breakdown(self):
        """EDF's claim to fame: schedulable iff U <= 1, even where RM fails.

        (30/50 + 19/70 = 0.87 > RM's feasible point for this pair.)
        """
        ts = TaskSet([
            Task(name="a", wcet=26.0, period=50.0),
            Task(name="b", wcet=33.0, period=70.0),
        ])
        # U = 0.52 + 0.471 = 0.99: RM misses, EDF does not.
        from repro.analysis.rta import is_schedulable

        assert not is_schedulable(rate_monotonic(ts))
        result = simulate(ts, EdfScheduler(), duration=3500.0, on_miss="record")
        assert not result.missed

    def test_runs_table1_clean(self):
        result = simulate(example_taskset(), EdfScheduler(), duration=400.0)
        assert not result.missed

    def test_same_busy_time_as_fps_at_full_speed(self):
        edf = simulate(example_taskset(), EdfScheduler(), duration=400.0)
        fps = simulate(example_taskset(), FpsScheduler(), duration=400.0)
        assert edf.energy.active == pytest.approx(fps.energy.active)

    def test_earliest_deadline_wins_dispatch(self):
        ts = TaskSet([
            Task(name="long", wcet=10.0, period=200.0),
            Task(name="short", wcet=10.0, period=50.0),
        ])
        result = simulate(ts, EdfScheduler(), duration=200.0, record_trace=True)
        first = [s for s in result.trace.segments if s.state == "run"][0]
        assert first.task == "short"


class TestAvr:
    def test_static_speed_is_quantized_utilization(self):
        ts = example_taskset()  # U = 0.85
        result = simulate(
            ts, AvrScheduler(), spec=ProcessorSpec.arm8(), duration=4000.0,
            on_miss="record", record_trace=True,
        )
        assert not result.missed
        speeds = {
            round(s.speed_end, 3)
            for s in result.trace.segments if s.state == "run"
        }
        assert 0.85 in speeds

    def test_no_powerdown_variant(self):
        result = simulate(
            example_taskset(), AvrScheduler(use_powerdown=False),
            duration=4000.0, on_miss="record",
        )
        assert result.sleep_entries == 0

    def test_beats_fps_on_low_utilization(self):
        ts = rate_monotonic(TaskSet([
            Task(name="a", wcet=10.0, period=100.0),
            Task(name="b", wcet=20.0, period=200.0),
        ]))
        avr = simulate(ts, AvrScheduler(), duration=10_000.0, on_miss="record")
        fps = simulate(ts, FpsScheduler(), duration=10_000.0)
        assert not avr.missed
        assert avr.average_power < fps.average_power

    def test_overutilized_set_clamps_to_full_speed(self):
        """AVR's static speed caps at 1.0 even when U > 1 (the set is
        infeasible either way; the scheduler must not crash)."""
        ts = TaskSet([
            Task(name="a", wcet=60.0, period=100.0),
            Task(name="b", wcet=50.0, period=100.0),
        ])
        result = simulate(ts, AvrScheduler(), duration=1_000.0,
                          on_miss="record", record_trace=True)
        assert result.missed  # U = 1.1 cannot be scheduled
        speeds = {s.speed_end for s in result.trace.segments if s.state == "run"}
        assert max(speeds) <= 1.0

    def test_static_speed_blind_to_variation(self):
        """AVR's weakness (paper section 2.2): early completions do not
        lower its speed, so power barely moves with BCET."""
        from repro.tasks.generation import UniformModel

        base = example_taskset()
        at_wcet = simulate(base, AvrScheduler(), duration=40_000.0,
                           on_miss="record")
        varied = simulate(
            base.with_bcet_ratio(0.2), AvrScheduler(),
            execution_model=UniformModel(), duration=40_000.0, seed=3,
            on_miss="record",
        )
        # Active energy per unit work is identical; only the sleep share
        # grows. Power changes far less than the ~40% demand drop.
        assert varied.average_power > 0.5 * at_wcet.average_power
