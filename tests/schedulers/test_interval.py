"""Tests for the PAST interval-prediction scheduler and engine ticks."""

import pytest

from repro.core.lpfps import LpfpsScheduler
from repro.errors import ConfigurationError
from repro.schedulers.fps import FpsScheduler
from repro.schedulers.interval import PastScheduler
from repro.sim.engine import simulate
from repro.tasks.generation import BimodalModel, GaussianModel
from repro.tasks.task import Task, TaskSet
from repro.workloads.example_dac99 import example_taskset
from repro.workloads.registry import get_workload


class TestConstruction:
    def test_parameter_validation(self):
        with pytest.raises(ConfigurationError):
            PastScheduler(interval=0.0)
        with pytest.raises(ConfigurationError):
            PastScheduler(raise_threshold=0.4, lower_threshold=0.6)
        with pytest.raises(ConfigurationError):
            PastScheduler(step=0.0)

    def test_tick_interval_exposed(self):
        assert PastScheduler(interval=7_000.0).tick_interval == 7_000.0


class TestEngineTicks:
    def test_invalid_tick_rejected(self):
        class BadTick(FpsScheduler):
            tick_interval = -1.0

        from repro.sim.engine import Simulator

        with pytest.raises(ConfigurationError):
            Simulator(example_taskset(), BadTick())

    def test_ticks_fire_periodically(self):
        from repro.sim.dispatch import Scheduler, fixed_priority_dispatch
        from repro.sim.events import Decision, SchedEvent

        ticks = []

        class TickProbe(Scheduler):
            name = "tick-probe"
            tick_interval = 50.0

            def schedule(self, kernel, event):
                if event is SchedEvent.TICK:
                    ticks.append(kernel.now)
                return Decision(run=fixed_priority_dispatch(kernel))

        ts = TaskSet([Task(name="a", wcet=10.0, period=100.0, priority=0)])
        simulate(ts, TickProbe(), duration=400.0)
        assert ticks == [50.0, 100.0, 150.0, 200.0, 250.0, 300.0, 350.0]


class TestPastBehaviour:
    def test_slows_under_light_steady_load(self):
        ts = TaskSet([Task(name="a", wcet=10.0, period=100.0, priority=0,
                           bcet=10.0)])
        result = simulate(ts, PastScheduler(interval=200.0),
                          duration=20_000.0, record_trace=True,
                          on_miss="record")
        speeds = [s.speed_end for s in result.trace.segments if s.state == "run"]
        assert min(speeds) < 0.5  # converges well below full speed

    def test_saves_power_vs_fps_on_steady_load(self):
        ts = get_workload("cnc").prioritized().with_bcet_ratio(0.5)
        past = simulate(ts, PastScheduler(), execution_model=GaussianModel(),
                        duration=500_000.0, seed=1, on_miss="record")
        fps = simulate(ts, FpsScheduler(), execution_model=GaussianModel(),
                       duration=500_000.0, seed=1)
        assert past.average_power < fps.average_power

    def test_misses_deadlines_on_bursty_demand(self):
        """The section 2.2 disqualification: prediction failure costs a
        hard deadline, which LPFPS never does on the same job stream."""
        ts = get_workload("ins").prioritized().with_bcet_ratio(0.1)
        model = BimodalModel(p_short=0.9)
        past = simulate(ts, PastScheduler(), execution_model=model,
                        duration=5_000_000.0, seed=1, on_miss="record")
        lpfps = simulate(ts, LpfpsScheduler(), execution_model=model,
                         duration=5_000_000.0, seed=1, on_miss="record")
        assert past.missed
        assert not lpfps.missed

    def test_recovers_speed_after_burst(self):
        ts = get_workload("ins").prioritized().with_bcet_ratio(0.1)
        result = simulate(ts, PastScheduler(),
                          execution_model=BimodalModel(p_short=0.9),
                          duration=1_000_000.0, seed=1, on_miss="record",
                          record_trace=True)
        speeds = [s.speed_end for s in result.trace.segments if s.state == "run"]
        assert max(speeds) > 0.9  # bursts push it back up
        assert min(speeds) < 0.3  # quiet stretches pull it down
