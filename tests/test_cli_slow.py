"""CLI end-to-end tests for the heavier subcommands."""

import pytest

from repro.cli import main


class TestFigure8Command:
    def test_single_panel(self, capsys):
        code = main(["figure8", "--app", "cnc", "--seeds", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Figure 8" in out
        assert "max reduction" in out


class TestAblationCommand:
    def test_policy_ablation(self, capsys):
        code = main(["ablation", "--which", "policy", "--app", "cnc"])
        assert code == 0
        assert "A1" in capsys.readouterr().out

    def test_rho_ablation(self, capsys):
        code = main(["ablation", "--which", "rho", "--app", "cnc"])
        assert code == 0
        assert "A4" in capsys.readouterr().out


class TestExtensionsCommand:
    def test_oracle_extension(self, capsys):
        code = main(["extensions", "--which", "oracle"])
        assert code == 0
        assert "A6" in capsys.readouterr().out
