"""LPFPS on constrained-deadline task sets (D < T, deadline-monotonic).

The paper works with implicit deadlines, but its own citation [4]
(deadline-monotonic assignment) covers D < T; LPFPS's slow-down window
must then clip at the active job's *deadline*, not just at its next
release — the extra bound `slowdown_window` implements.
"""

import pytest

from repro.analysis.rta import analyze
from repro.core.lpfps import LpfpsScheduler
from repro.power.processor import ProcessorSpec
from repro.sim.engine import simulate
from repro.sim.validate import validate_trace
from repro.tasks.priority import deadline_monotonic
from repro.tasks.task import Task, TaskSet


def _constrained_set():
    return deadline_monotonic(TaskSet([
        Task(name="ctrl", wcet=10.0, period=100.0, deadline=40.0),
        Task(name="log", wcet=20.0, period=500.0, deadline=400.0),
    ], name="constrained"))


class TestConstrainedDeadlines:
    def test_set_is_dm_schedulable(self):
        result = analyze(_constrained_set())
        assert result.schedulable

    def test_lpfps_meets_constrained_deadlines(self):
        result = simulate(_constrained_set(), LpfpsScheduler(),
                          spec=ProcessorSpec.ideal(), duration=5_000.0)
        assert not result.missed
        for name, stats in result.task_stats.items():
            deadline = _constrained_set().task(name).deadline
            assert stats.worst_response <= deadline + 1e-6

    def test_slowdown_clipped_at_deadline_not_period(self):
        """A lone ctrl job with every other release far away must stretch
        only to its 40 us deadline (speed >= C/D = 0.25), never across its
        100 us period (speed C/T = 0.1)."""
        result = simulate(_constrained_set(), LpfpsScheduler(),
                          spec=ProcessorSpec.ideal(), duration=5_000.0,
                          record_trace=True)
        ctrl_runs = result.trace.segments_for_task("ctrl")
        slowed = [s for s in ctrl_runs if s.speed_start < 1.0 - 1e-9]
        assert slowed, "the lone ctrl job must get stretched"
        assert min(s.speed_start for s in slowed) >= 0.25 - 1e-9

    def test_trace_invariants_hold(self):
        result = simulate(_constrained_set(), LpfpsScheduler(),
                          spec=ProcessorSpec.ideal(), duration=5_000.0,
                          record_trace=True)
        assert validate_trace(result.trace, _constrained_set()) == []

    def test_arm8_with_ramps_also_clean(self):
        result = simulate(_constrained_set(), LpfpsScheduler(),
                          duration=5_000.0)
        assert not result.missed

    def test_optimal_policy_also_clean(self):
        result = simulate(
            _constrained_set(), LpfpsScheduler(speed_policy="optimal"),
            duration=5_000.0,
        )
        assert not result.missed
