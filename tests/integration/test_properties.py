"""Property-based system tests: the reproduction's load-bearing invariants.

Each property runs whole simulations on randomly generated schedulable task
sets with random execution-time draws:

* **Hard real-time** — LPFPS (all variants) never misses a deadline on an
  RM-schedulable set when static slack covers the worst transition delay.
* **Dominance** — LPFPS never consumes more than FPS on the same jobs.
* **Work conservation** — every completed job executed exactly its demand.
* **Energy consistency** — the per-state breakdown is non-negative and the
  average power is at most full-speed power.
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.breakdown import breakdown_utilization
from repro.analysis.rta import is_schedulable
from repro.core.lpfps import LpfpsScheduler
from repro.power.processor import ProcessorSpec
from repro.schedulers.fps import FpsScheduler
from repro.sim.engine import simulate
from repro.tasks.generation import GaussianModel, UniformModel, random_taskset
from repro.tasks.priority import rate_monotonic

_SLOW = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


def _schedulable_set(seed: int, max_tasks: int = 8, u_hi: float = 0.85):
    """Generate an RM-schedulable task set with real slack.

    LPFPS's heuristic leaves up to ~2 transition delays of lateness on the
    table (see test_lpfps.py), so property runs demand a breakdown factor
    comfortably above 1 — matching the paper's workloads, all of which have
    static slack far beyond 14 us.
    """
    rng = random.Random(seed)
    for _ in range(60):
        ts = rate_monotonic(random_taskset(
            n=rng.randint(2, max_tasks),
            total_utilization=rng.uniform(0.25, u_hi),
            rng=rng,
            bcet_ratio=rng.uniform(0.2, 1.0),
            period_lo=2_000.0,
            period_hi=200_000.0,
            min_wcet=50.0,
        ))
        if not is_schedulable(ts):
            continue
        if breakdown_utilization(ts).factor < 1.05:
            continue
        return ts
    raise AssertionError("could not generate a schedulable set")


def _horizon(ts):
    return min(ts.hyperperiod, 2_000_000.0)


class TestHardRealTime:
    @given(seed=st.integers(0, 10_000))
    @_SLOW
    def test_lpfps_heuristic_meets_all_deadlines(self, seed):
        ts = _schedulable_set(seed)
        result = simulate(
            ts, LpfpsScheduler(), execution_model=GaussianModel(),
            duration=_horizon(ts), seed=seed,
        )
        assert not result.missed

    @given(seed=st.integers(0, 10_000))
    @_SLOW
    def test_lpfps_optimal_meets_all_deadlines(self, seed):
        ts = _schedulable_set(seed)
        result = simulate(
            ts, LpfpsScheduler(speed_policy="optimal"),
            execution_model=UniformModel(), duration=_horizon(ts), seed=seed,
        )
        assert not result.missed

    @given(seed=st.integers(0, 10_000))
    @_SLOW
    def test_fps_meets_all_deadlines(self, seed):
        ts = _schedulable_set(seed)
        result = simulate(
            ts, FpsScheduler(), execution_model=GaussianModel(),
            duration=_horizon(ts), seed=seed,
        )
        assert not result.missed


class TestDominance:
    @given(seed=st.integers(0, 10_000))
    @_SLOW
    def test_lpfps_power_never_exceeds_fps(self, seed):
        ts = _schedulable_set(seed)
        kwargs = dict(execution_model=GaussianModel(),
                      duration=_horizon(ts), seed=seed)
        lpfps = simulate(ts, LpfpsScheduler(), **kwargs)
        fps = simulate(ts, FpsScheduler(), **kwargs)
        assert lpfps.energy.total <= fps.energy.total + 1e-6

    @given(seed=st.integers(0, 10_000))
    @_SLOW
    def test_disabled_mechanisms_bracket_full_lpfps(self, seed):
        """LPFPS with both hooks is at least as good as power-down-only."""
        ts = _schedulable_set(seed)
        kwargs = dict(execution_model=GaussianModel(),
                      duration=_horizon(ts), seed=seed)
        both = simulate(ts, LpfpsScheduler(), **kwargs)
        pd_only = simulate(ts, LpfpsScheduler(use_dvs=False), **kwargs)
        assert both.energy.total <= pd_only.energy.total + 1e-6


class TestConservation:
    @given(seed=st.integers(0, 10_000))
    @_SLOW
    def test_all_jobs_complete_with_exact_work(self, seed):
        ts = _schedulable_set(seed)
        result = simulate(
            ts, LpfpsScheduler(), execution_model=UniformModel(),
            duration=_horizon(ts), seed=seed,
        )
        # Released jobs either completed or are the single in-flight job
        # per task at the horizon.
        for name, stats in result.task_stats.items():
            assert stats.jobs_released - stats.jobs_completed <= 1

    @given(seed=st.integers(0, 10_000))
    @_SLOW
    def test_energy_breakdown_sane(self, seed):
        ts = _schedulable_set(seed)
        result = simulate(
            ts, LpfpsScheduler(), execution_model=GaussianModel(),
            duration=_horizon(ts), seed=seed,
        )
        breakdown = result.energy.as_dict()
        assert all(v >= 0 for v in breakdown.values())
        assert result.average_power <= 1.0 + 1e-9
        assert result.energy.total == pytest.approx(
            sum(breakdown.values())
        )


class TestResponseTimesWithinRta:
    @given(seed=st.integers(0, 5_000))
    @_SLOW
    def test_observed_response_never_exceeds_rta_bound(self, seed):
        """Simulation cross-validates analysis: observed responses under
        FPS at WCET stay within the RTA worst case."""
        from repro.analysis.rta import analyze

        ts = _schedulable_set(seed)
        bounds = analyze(ts).response_times
        result = simulate(ts, FpsScheduler(), duration=_horizon(ts))
        for name, stats in result.task_stats.items():
            if stats.jobs_completed:
                assert stats.worst_response <= bounds[name] + 1e-6
