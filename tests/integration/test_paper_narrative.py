"""End-to-end replays of every event the paper narrates.

These integration tests execute whole simulations and assert the exact
times, queue states, and speed decisions sections 2.3 and 3.2 describe.
"""

import pytest

from repro.core.lpfps import LpfpsScheduler
from repro.power.processor import ProcessorSpec
from repro.schedulers.fps import FpsScheduler
from repro.sim.dispatch import Scheduler, fixed_priority_dispatch
from repro.sim.engine import Simulator, simulate
from repro.sim.events import Decision
from repro.workloads.example_dac99 import example_taskset


class TestFigure2a:
    """FPS, every job at its WCET."""

    @pytest.fixture(autouse=True)
    def _run(self):
        self.result = simulate(
            example_taskset(), FpsScheduler(), duration=400.0,
            record_trace=True,
        )
        self.trace = self.result.trace

    def test_tau1_preempts_tau3_at_50(self):
        seg = self.trace.state_at(55.0)
        assert seg.task == "tau1"
        tau3_segments = self.trace.segments_for_task("tau3")
        assert tau3_segments[0].end == 50.0

    def test_first_idle_interval_is_180_to_200(self):
        idles = self.trace.idle_intervals()
        assert idles[0] == (180.0, 200.0)

    def test_tau2_runs_80_to_100(self):
        """'There will be requests for tau1 and tau3 at time 100, which is
        the same time tau2 will complete its execution at its WCET.'"""
        seg = self.trace.state_at(90.0)
        assert seg.task == "tau2"
        completions = [e for e in self.trace.events_of_kind("completion")
                       if e.detail == "tau2#1"]
        assert completions[0].time == pytest.approx(100.0)

    def test_system_just_meets_schedulability(self):
        assert not self.result.missed


class TestFigure3QueueStates:
    """Queue contents at t=0 and t=50 (Figure 3)."""

    def test_queues(self):
        snapshots = {}

        class Spy(Scheduler):
            name = "spy"

            def schedule(self, kernel, event):
                active = fixed_priority_dispatch(kernel)
                snapshots[kernel.now] = (
                    active.task.name if active else None,
                    [j.task.name for j in kernel.run_queue.jobs()],
                    [name for _, name in kernel.delay_queue.entries()],
                )
                return Decision(run=active)

        Simulator(example_taskset(), Spy(), duration=60.0).run()

        # Figure 3(a), t=0: tau1 active; tau2, tau3 in the run queue.
        active, run_q, _ = snapshots[0.0]
        assert active == "tau1"
        assert run_q == ["tau2", "tau3"]

        # Figure 3(b), t=50: tau1 active again; tau3 preempted back into
        # the run queue; tau2 waiting in the delay queue.
        active, run_q, delay_q = snapshots[50.0]
        assert active == "tau1"
        assert run_q == ["tau3"]
        assert "tau2" in delay_q


class TestFigure5Example2:
    """Queue/speed states at t=160 and t=180 (Figure 5, ideal delays)."""

    @pytest.fixture(autouse=True)
    def _run(self):
        base = example_taskset()
        varied = base.with_tasks([
            t.with_bcet(t.wcet / 2.0) if t.name == "tau2" else t for t in base
        ])

        from repro.tasks.generation import WcetModel

        class HalfTau2(WcetModel):
            def sample(self, task, rng):
                return task.wcet / 2.0 if task.name == "tau2" else task.wcet

        self.result = simulate(
            varied, LpfpsScheduler(), spec=ProcessorSpec.ideal(),
            execution_model=HalfTau2(), duration=400.0, record_trace=True,
        )

    def test_speed_ratio_half_at_160(self):
        """'The scheduler computes the desired ratio ... = 0.5.'"""
        seg = self.result.trace.state_at(170.0)
        assert seg.task == "tau2"
        assert seg.speed_start == pytest.approx(0.5)

    def test_power_down_at_180_with_timer_200(self):
        """'The scheduler brings the processor into a power-down mode with
        the timer set to the next arrival time of tau1 (200).'"""
        sleeps = self.result.trace.events_of_kind("sleep")
        at_180 = [e for e in sleeps if abs(e.time - 180.0) < 1e-6]
        assert at_180
        assert float(at_180[0].detail) == pytest.approx(200.0)

    def test_execution_resumes_at_200(self):
        seg = self.result.trace.state_at(200.5)
        assert seg.state == "run" and seg.task == "tau1"


class TestPowerOrdering:
    """Energy sanity across the scheduler family on the example set."""

    def test_lpfps_never_exceeds_fps(self):
        for spec in (ProcessorSpec.ideal(), ProcessorSpec.arm8()):
            fps = simulate(example_taskset(), FpsScheduler(),
                           spec=spec, duration=400.0)
            lpfps = simulate(example_taskset(), LpfpsScheduler(),
                             spec=spec, duration=400.0, on_miss="record")
            assert lpfps.average_power < fps.average_power
