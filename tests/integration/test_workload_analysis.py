"""Cross-validation of analysis vs simulation on the paper's workloads."""

import pytest

from repro.analysis.demand import edf_feasible, minimum_edf_speed
from repro.analysis.rta import analyze
from repro.analysis.sensitivity import wcet_margins
from repro.core.lpfps import LpfpsScheduler
from repro.schedulers.fps import FpsScheduler
from repro.sim.engine import simulate
from repro.workloads.registry import TABLE2_NAMES, get_workload


@pytest.fixture(params=TABLE2_NAMES)
def workload(request):
    return get_workload(request.param)


class TestAnalysisAgreement:
    def test_edf_feasible_at_full_speed(self, workload):
        assert edf_feasible(workload.taskset)

    def test_minimum_edf_speed_is_utilization(self, workload):
        """Implicit deadlines: the EDF floor equals total utilisation."""
        speed = minimum_edf_speed(workload.prioritized())
        assert speed == pytest.approx(workload.utilization, abs=1e-4)

    def test_positive_wcet_margins(self, workload):
        """All four sets have real static slack (unlike Table 1)."""
        result = wcet_margins(workload.prioritized())
        assert result.critical_margin > 0

    def test_rta_slack_positive(self, workload):
        result = analyze(workload.prioritized())
        assert result.schedulable
        assert result.worst_slack() > 0


class TestSimulationWithinBounds:
    def _horizon(self, taskset):
        return min(taskset.hyperperiod, 2_000_000.0)

    def test_fps_worst_response_within_rta(self, workload):
        """At WCET demand, the critical instant bounds every observed
        response — simulation agrees with the exact analysis."""
        taskset = workload.prioritized()
        bounds = analyze(taskset).response_times
        result = simulate(taskset, FpsScheduler(),
                          duration=self._horizon(taskset))
        for name, stats in result.task_stats.items():
            if stats.jobs_completed:
                assert stats.worst_response <= bounds[name] + 1e-6, name

    def test_lpfps_responses_within_deadlines(self, workload):
        taskset = workload.prioritized()
        result = simulate(taskset, LpfpsScheduler(),
                          duration=self._horizon(taskset))
        assert not result.missed
        for name, stats in result.task_stats.items():
            if stats.jobs_completed:
                assert stats.worst_response <= taskset.task(name).deadline + 1e-6

    def test_lpfps_slack_covers_return_ramp(self, workload):
        """Why the heuristic is safe on all four applications: the static
        slack exceeds the worst DVS transition delay by a wide margin."""
        from repro.power.processor import ProcessorSpec

        taskset = workload.prioritized()
        slack = analyze(taskset).worst_slack()
        worst_ramp = ProcessorSpec.arm8().worst_case_transition_delay
        assert slack > 3 * worst_ramp
