"""Property tests: every policy produces structurally valid traces."""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.lpfps import LpfpsScheduler
from repro.power.processor import ProcessorSpec
from repro.schedulers.edf import AvrScheduler, EdfScheduler
from repro.schedulers.fps import FpsScheduler
from repro.schedulers.powerdown import ThresholdPowerDownFps, TimerPowerDownFps
from repro.sim.engine import simulate
from repro.sim.validate import validate_trace
from repro.tasks.generation import GaussianModel, MarkovModel, UniformModel

from .test_properties import _horizon, _schedulable_set

_SLOW = settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


class TestFixedPriorityTraces:
    @given(seed=st.integers(0, 5_000))
    @_SLOW
    def test_fps_trace_valid(self, seed):
        ts = _schedulable_set(seed)
        result = simulate(ts, FpsScheduler(), execution_model=GaussianModel(),
                          duration=_horizon(ts), seed=seed, record_trace=True)
        assert validate_trace(result.trace, ts) == []

    @given(seed=st.integers(0, 5_000))
    @_SLOW
    def test_lpfps_trace_valid(self, seed):
        ts = _schedulable_set(seed)
        result = simulate(ts, LpfpsScheduler(), execution_model=UniformModel(),
                          duration=_horizon(ts), seed=seed, record_trace=True)
        assert validate_trace(result.trace, ts) == []

    @given(seed=st.integers(0, 5_000))
    @_SLOW
    def test_lpfps_optimal_trace_valid(self, seed):
        ts = _schedulable_set(seed)
        result = simulate(
            ts, LpfpsScheduler(speed_policy="optimal"),
            execution_model=MarkovModel(), duration=_horizon(ts), seed=seed,
            record_trace=True,
        )
        assert validate_trace(result.trace, ts) == []

    @given(seed=st.integers(0, 5_000))
    @_SLOW
    def test_powerdown_traces_valid(self, seed):
        ts = _schedulable_set(seed)
        for scheduler in (TimerPowerDownFps(), ThresholdPowerDownFps()):
            result = simulate(ts, scheduler, execution_model=GaussianModel(),
                              duration=_horizon(ts), seed=seed,
                              record_trace=True)
            assert validate_trace(result.trace, ts) == []


class TestEnergyAudit:
    @given(seed=st.integers(0, 5_000))
    @_SLOW
    def test_lpfps_energy_audit_consistent(self, seed):
        """The trace-recomputed energy matches the engine's accumulators."""
        from repro.sim.audit import audit_energy

        ts = _schedulable_set(seed)
        spec = ProcessorSpec.arm8()
        result = simulate(ts, LpfpsScheduler(), spec=spec,
                          execution_model=GaussianModel(),
                          duration=_horizon(ts), seed=seed, record_trace=True)
        audit = audit_energy(result.trace, spec, result.energy, tolerance=1e-4)
        assert audit.consistent, audit.summary()


class TestDynamicPriorityTraces:
    """EDF-family policies: skip the fixed-priority check, keep the rest."""

    @given(seed=st.integers(0, 5_000))
    @_SLOW
    def test_edf_trace_valid(self, seed):
        ts = _schedulable_set(seed)
        result = simulate(ts, EdfScheduler(), execution_model=GaussianModel(),
                          duration=_horizon(ts), seed=seed, record_trace=True)
        violations = validate_trace(
            result.trace, ts, check_priorities=False,
            check_slowdown_exclusive=False,
        )
        assert violations == []

    @given(seed=st.integers(0, 5_000))
    @_SLOW
    def test_avr_trace_valid(self, seed):
        ts = _schedulable_set(seed)
        result = simulate(ts, AvrScheduler(), execution_model=GaussianModel(),
                          duration=_horizon(ts), seed=seed, record_trace=True,
                          on_miss="record")
        violations = validate_trace(
            result.trace, ts, check_priorities=False,
            check_slowdown_exclusive=False,
        )
        assert violations == []
