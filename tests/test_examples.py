"""Smoke tests: every shipped example runs cleanly end to end."""

import pathlib
import subprocess
import sys

import pytest

_EXAMPLES = sorted(
    (pathlib.Path(__file__).parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("script", _EXAMPLES, ids=lambda p: p.name)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), "examples must produce output"


def test_examples_present():
    """The deliverable demands at least a quickstart plus domain examples."""
    names = {p.name for p in _EXAMPLES}
    assert "quickstart.py" in names
    assert len(names) >= 3
