"""CLI tests (fast subcommands only; sweeps are covered by benchmarks)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_known_commands(self):
        parser = build_parser()
        for cmd in ("figure1", "table1", "table2", "figure7"):
            assert parser.parse_args([cmd]).command == cmd

    def test_figure8_arguments(self):
        args = build_parser().parse_args(["figure8", "--app", "ins",
                                          "--seeds", "1", "2"])
        assert args.app == "ins"
        assert args.seeds == [1, 2]

    def test_simulate_arguments(self):
        args = build_parser().parse_args([
            "simulate", "--app", "cnc", "--scheduler", "lpfps",
            "--bcet-ratio", "0.5", "--duration", "9600",
        ])
        assert args.bcet_ratio == 0.5
        assert args.duration == 9600.0

    def test_rejects_unknown_app(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure8", "--app", "nope"])


class TestMain:
    def test_figure1(self, capsys):
        assert main(["figure1"]) == 0
        assert "Figure 1" in capsys.readouterr().out

    def test_table2(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "INS" in out and "CNC" in out

    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        assert "checkpoints" in capsys.readouterr().out

    def test_figure7(self, capsys):
        assert main(["figure7"]) == 0
        assert "r_heu" in capsys.readouterr().out

    def test_simulate(self, capsys):
        code = main([
            "simulate", "--app", "cnc", "--scheduler", "lpfps",
            "--duration", "96000", "--bcet-ratio", "0.5",
        ])
        assert code == 0
        assert "LPFPS on cnc" in capsys.readouterr().out

    def test_simulate_fps(self, capsys):
        code = main([
            "simulate", "--app", "example", "--scheduler", "fps",
            "--duration", "400",
        ])
        assert code == 0

    def test_validate_clean_run(self, capsys):
        code = main([
            "validate", "--app", "example", "--scheduler", "lpfps",
            "--duration", "4000",
        ])
        assert code == 0
        assert "passes all kernel invariants" in capsys.readouterr().out

    def test_validate_edf(self, capsys):
        code = main([
            "validate", "--app", "example", "--scheduler", "edf",
            "--duration", "4000",
        ])
        assert code == 0

    def test_extensions_parser(self):
        args = build_parser().parse_args(["extensions", "--which", "oracle"])
        assert args.which == "oracle"
