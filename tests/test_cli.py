"""CLI tests (fast subcommands only; sweeps are covered by benchmarks)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_known_commands(self):
        parser = build_parser()
        for cmd in ("figure1", "table1", "table2", "figure7"):
            assert parser.parse_args([cmd]).command == cmd

    def test_figure8_arguments(self):
        args = build_parser().parse_args(["figure8", "--app", "ins",
                                          "--seeds", "1", "2"])
        assert args.app == "ins"
        assert args.seeds == [1, 2]

    def test_simulate_arguments(self):
        args = build_parser().parse_args([
            "simulate", "--app", "cnc", "--scheduler", "lpfps",
            "--bcet-ratio", "0.5", "--duration", "9600",
        ])
        assert args.bcet_ratio == 0.5
        assert args.duration == 9600.0

    def test_rejects_unknown_app(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure8", "--app", "nope"])


class TestMain:
    def test_figure1(self, capsys):
        assert main(["figure1"]) == 0
        assert "Figure 1" in capsys.readouterr().out

    def test_table2(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "INS" in out and "CNC" in out

    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        assert "checkpoints" in capsys.readouterr().out

    def test_figure7(self, capsys):
        assert main(["figure7"]) == 0
        assert "r_heu" in capsys.readouterr().out

    def test_simulate(self, capsys):
        code = main([
            "simulate", "--app", "cnc", "--scheduler", "lpfps",
            "--duration", "96000", "--bcet-ratio", "0.5",
        ])
        assert code == 0
        assert "LPFPS on cnc" in capsys.readouterr().out

    def test_simulate_fps(self, capsys):
        code = main([
            "simulate", "--app", "example", "--scheduler", "fps",
            "--duration", "400",
        ])
        assert code == 0

    def test_validate_clean_run(self, capsys):
        code = main([
            "validate", "--app", "example", "--scheduler", "lpfps",
            "--duration", "4000",
        ])
        assert code == 0
        assert "passes all kernel invariants" in capsys.readouterr().out

    def test_validate_edf(self, capsys):
        code = main([
            "validate", "--app", "example", "--scheduler", "edf",
            "--duration", "4000",
        ])
        assert code == 0

    def test_extensions_parser(self):
        args = build_parser().parse_args(["extensions", "--which", "oracle"])
        assert args.which == "oracle"


class TestCapabilityListings:
    def test_schedulers_table(self, capsys):
        assert main(["schedulers"]) == 0
        out = capsys.readouterr().out
        assert "jcl" in out and "lpfps" in out

    def test_schedulers_json(self, capsys):
        import json

        assert main(["schedulers", "--json"]) == 0
        rows = json.loads(capsys.readouterr().out)
        by_name = {row["name"]: row for row in rows}
        assert by_name["jcl"]["weakly_hard"] is True
        assert by_name["yds"]["oracle"] is True
        assert by_name["past"]["tick_driven"] is True
        assert by_name["fps"]["requires_priorities"] is True

    def test_workloads_json(self, capsys):
        import json

        assert main(["workloads", "--json"]) == 0
        rows = json.loads(capsys.readouterr().out)
        by_name = {row["name"]: row for row in rows}
        assert by_name["ins"]["tasks"] == 6
        assert by_name["cnc"]["hyperperiod_us"] == 7200.0
        assert 0 < by_name["avionics"]["utilization"] < 1
        assert by_name["example"]["reconstructed"] is False


class TestScenarioCli:
    def test_list_names(self, capsys):
        assert main(["scenario", "list"]) == 0
        out = capsys.readouterr().out.split()
        assert "weakly_hard" in out and "cnc" in out

    def test_list_json(self, capsys):
        import json

        assert main(["scenario", "list", "--json"]) == 0
        rows = json.loads(capsys.readouterr().out)
        by_name = {row["name"]: row for row in rows}
        assert by_name["weakly_hard"]["weakly_hard"] == {
            "stream_a": [1, 2], "stream_b": [1, 2],
        }
        assert len(by_name["cnc"]["fingerprint"]) == 64

    def test_validate_pack_prints_fingerprint(self, capsys):
        assert main(["scenario", "validate", "weakly_hard"]) == 0
        assert "fingerprint" in capsys.readouterr().out

    def test_validate_file_path(self, tmp_path, capsys):
        import json

        from repro.scenarios import pack_path

        copy = tmp_path / "copy.json"
        copy.write_text(pack_path("cnc").read_text())
        assert main(["scenario", "validate", str(copy)]) == 0

    def test_validate_invalid_document_names_the_field(self, tmp_path, capsys):
        import json

        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({
            "schema": "repro/scenario/v1",
            "name": "bad",
            "tasks": [{"name": "a", "wcet": 1.0, "period": 4.0, "wat": 1}],
        }))
        assert main(["scenario", "validate", str(bad)]) == 1
        err = capsys.readouterr().err
        assert "tasks[0].wat: unknown key" in err

    def test_unknown_pack_fails(self, capsys):
        assert main(["scenario", "validate", "nope"]) == 1
        assert "available" in capsys.readouterr().err

    def test_run_weakly_hard_reports_the_contrast(self, capsys):
        # exit 1: the fps cells violate their windows, by design
        assert main(["scenario", "run", "weakly_hard"]) == 1
        out = capsys.readouterr().out
        assert "VIOLATED" in out and "ok" in out

    def test_run_json_streams_cell_events(self, capsys):
        import json

        main(["scenario", "run", "weakly_hard", "--json"])
        lines = capsys.readouterr().out.strip().splitlines()
        events = [json.loads(line) for line in lines if line.startswith("{")]
        assert len(events) == 2
        assert all(event["event"] == "cell" for event in events)

    def test_check_round_trips_the_library(self, capsys):
        assert main(["scenario", "check"]) == 0
        out = capsys.readouterr().out
        assert "weakly_hard: round-trip ok" in out
        assert "(m,k) schedulable" in out


class TestQueryRetryArgs:
    def test_max_attempts_default(self):
        args = build_parser().parse_args(["query", "--app", "cnc"])
        assert args.max_attempts == 5

    def test_max_attempts_override(self):
        args = build_parser().parse_args(
            ["query", "--app", "cnc", "--max-attempts", "1"]
        )
        assert args.max_attempts == 1
