"""Unit tests for breakdown-utilisation search."""

import pytest

from repro.analysis.breakdown import breakdown_utilization, slack_factor
from repro.analysis.rta import is_schedulable
from repro.tasks.priority import rate_monotonic
from repro.tasks.task import Task, TaskSet
from repro.workloads.example_dac99 import example_taskset


class TestBreakdown:
    def test_table1_is_exactly_at_breakdown(self):
        """Table 1 'just meets its schedulability' — literally.

        tau3's response time is exactly 80, sitting on tau2's second
        release: *any* WCET inflation pulls in extra interference and tau3
        misses at t = 100, so the breakdown factor is exactly 1.
        """
        result = breakdown_utilization(example_taskset())
        assert result.factor == pytest.approx(1.0, abs=1e-5)
        assert slack_factor(example_taskset()) == pytest.approx(0.0, abs=1e-5)

    def test_factor_bracketes_schedulability(self):
        ts = example_taskset()
        factor = breakdown_utilization(ts).factor
        assert is_schedulable(rate_monotonic(ts.scaled(factor * 0.999)))
        assert not is_schedulable(rate_monotonic(ts.scaled(factor * 1.01)))

    def test_harmonic_set_reaches_full_utilization(self):
        ts = TaskSet([Task(name="a", wcet=10, period=100),
                      Task(name="b", wcet=20, period=200)])
        result = breakdown_utilization(ts)
        # U = 0.2; harmonic -> schedulable up to U = 1 -> factor = 5.
        assert result.factor == pytest.approx(5.0, rel=1e-3)
        assert result.utilization == pytest.approx(1.0, rel=1e-3)

    def test_unschedulable_set_shrinks_below_one(self):
        ts = TaskSet([Task(name="a", wcet=40, period=50),
                      Task(name="b", wcet=40, period=100, deadline=100)])
        result = breakdown_utilization(ts)
        assert 0 < result.factor < 1.0

    def test_utilization_consistency(self):
        ts = example_taskset()
        result = breakdown_utilization(ts)
        assert result.utilization == pytest.approx(ts.utilization * result.factor)
