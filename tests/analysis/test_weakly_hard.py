"""Weakly-hard (m,k) model: edge cases, windows, and feasibility.

The edge cases the scenario platform leans on: ``m = k`` collapses to
the hard constraint, ``k = 1`` is either hard or trivial, windows that
span a hyperperiod boundary are still checked, and a pack whose demand
bound exceeds the processor is rejected with a message naming the bound.
"""

import pytest

from repro.analysis.weakly_hard import (
    WeaklyHard,
    check_result,
    coerce_constraint,
    coerce_constraints,
    jcl_schedulability,
    outcome_sequences,
    weakly_hard_demand,
)
from repro.errors import ConfigurationError
from repro.tasks.priority import rate_monotonic
from repro.tasks.task import Task, TaskSet


def _overloaded_pair():
    """Two 0.6-utilisation streams: hard-infeasible, (1,2)-feasible.

    Both streams carry the constraint — the JCL alternation needs each
    stream to yield every other window; one hard stream at 0.6 would pin
    the processor and leave the other only 400 µs per 600 µs job.
    """
    taskset = TaskSet(
        [
            Task("stream_a", wcet=600.0, period=1000.0),
            Task("stream_b", wcet=600.0, period=1000.0),
        ],
        name="pair",
    )
    constraints = {"stream_a": WeaklyHard(1, 2), "stream_b": WeaklyHard(1, 2)}
    return rate_monotonic(taskset), constraints


class TestConstraintEdges:
    def test_m_equals_k_is_hard(self):
        constraint = WeaklyHard(3, 3)
        assert constraint.hard and not constraint.trivial
        assert constraint.demotion_threshold() is None
        # any single miss violates
        assert constraint.first_violation([True, True, False]) == 0
        assert constraint.satisfied([True, True, True])

    def test_k_equals_one(self):
        hard = WeaklyHard(1, 1)
        assert hard.hard and hard.demotion_threshold() is None
        assert hard.first_violation([True, False, True]) == 1
        trivial = WeaklyHard(0, 1)
        assert trivial.trivial and trivial.demotion_threshold() == 0
        assert trivial.satisfied([False, False, False])

    def test_m_zero_never_violates(self):
        assert WeaklyHard(0, 4).first_violation([False] * 10) is None

    def test_rejects_m_greater_than_k(self):
        with pytest.raises(ConfigurationError, match="m must be <= k"):
            WeaklyHard(3, 2)

    def test_rejects_non_integer_and_bool(self):
        with pytest.raises(ConfigurationError):
            WeaklyHard(1.0, 2)
        with pytest.raises(ConfigurationError):
            WeaklyHard(True, 2)
        with pytest.raises(ConfigurationError):
            WeaklyHard(1, 0)

    def test_demotion_threshold_examples(self):
        # (1,2): one miss every h+1 jobs must leave >= 1 hit per 2-window.
        assert WeaklyHard(1, 2).demotion_threshold() == 1
        # (2,4): ceil(4/(h+1)) <= 2 first holds at h = 1.
        assert WeaklyHard(2, 4).demotion_threshold() == 1
        # (3,4): ceil(4/(h+1)) <= 1 first holds at h = 3.
        assert WeaklyHard(3, 4).demotion_threshold() == 3

    def test_short_sequence_has_no_full_window(self):
        assert WeaklyHard(2, 3).first_violation([False]) is None


class TestHyperperiodBoundary:
    def test_violating_window_spans_the_repetition_boundary(self):
        # One hyperperiod's outcomes never place two misses in a row...
        pattern = [False, True, True, False]
        assert WeaklyHard(1, 2).first_violation(pattern) is None
        # ...but the window straddling two repetitions does.
        assert WeaklyHard(1, 2).first_violation(pattern * 2) == 3

    def test_coerce_constraint_accepts_pairs(self):
        assert coerce_constraint((2, 4)) == WeaklyHard(2, 4)
        assert coerce_constraint([1, 2]) == WeaklyHard(1, 2)
        with pytest.raises(ConfigurationError, match="mk: expected"):
            coerce_constraint("nope", where="mk")

    def test_coerce_constraints_rejects_unknown_task_names(self):
        taskset, _ = _overloaded_pair()
        with pytest.raises(ConfigurationError, match="unknown tasks: \\['ghost'\\]"):
            coerce_constraints({"ghost": (1, 2)}, taskset)


class TestDemandBound:
    def test_unconstrained_tasks_count_as_hard(self):
        taskset, _ = _overloaded_pair()
        # stream_a hard (0.6) + stream_b at m/k = 1/2 (0.3).
        partial = {"stream_b": WeaklyHard(1, 2)}
        assert weakly_hard_demand(taskset, partial) == pytest.approx(0.9)
        assert weakly_hard_demand(taskset, {}) == pytest.approx(1.2)

    def test_infeasible_demand_is_rejected_with_the_bound(self):
        taskset = rate_monotonic(
            TaskSet(
                [
                    Task("hard", wcet=900.0, period=1000.0),
                    Task("soft", wcet=900.0, period=1000.0),
                ],
                name="overfull",
            )
        )
        verdict = jcl_schedulability(taskset, {"soft": (1, 2)})
        assert not verdict.schedulable
        assert verdict.demand == pytest.approx(1.35)
        assert "demand 1.350 exceeds the processor" in verdict.reason
        assert "infeasible under any scheduler" in verdict.reason


class TestSchedulability:
    def test_feasible_weakly_hard_pair(self):
        taskset, constraints = _overloaded_pair()
        verdict = jcl_schedulability(taskset, constraints, hyperperiods=3)
        assert verdict.schedulable
        assert "3 hyperperiod(s)" in verdict.reason
        assert verdict.violations == {}

    def test_hard_overload_is_caught_by_simulation(self):
        # No constraint: both streams hard, demand 1.2 > 1 trips stage 1.
        taskset, _ = _overloaded_pair()
        verdict = jcl_schedulability(taskset, {})
        assert not verdict.schedulable

    def test_rejects_bad_hyperperiods(self):
        taskset, constraints = _overloaded_pair()
        with pytest.raises(ConfigurationError, match="hyperperiods"):
            jcl_schedulability(taskset, constraints, hyperperiods=0)


class TestOutcomeSequences:
    def test_check_result_reports_first_violating_window(self):
        from repro.faults.guards import GuardConfig
        from repro.faults.layer import FaultLayer
        from repro.schedulers.registry import make_scheduler
        from repro.sim.engine import simulate
        from repro.tasks.generation import WcetModel

        taskset, constraints = _overloaded_pair()
        # 3 hyperperiods: the last job's deadline sits exactly at the
        # horizon and is undecided, leaving two decided jobs per stream.
        duration = taskset.hyperperiod * 3
        result = simulate(
            taskset,
            make_scheduler("fps"),
            execution_model=WcetModel(),
            duration=duration,
            on_miss="record",
            faults=FaultLayer(guards=GuardConfig(miss_policy="abort")),
        )
        windows = check_result(result, taskset, constraints, duration)
        # FPS starves stream_b every period: its very first window fails.
        assert windows["stream_b"] == 0
        assert windows["stream_a"] is None
        sequences = outcome_sequences(result, taskset, duration)
        assert sequences["stream_b"] == [False, False]
        assert sequences["stream_a"] == [True, True]
