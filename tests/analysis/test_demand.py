"""Unit tests for EDF processor-demand analysis."""

import pytest

from repro.analysis.demand import (
    demand_bound,
    edf_feasible,
    edf_testing_horizon,
    minimum_edf_speed,
)
from repro.analysis.demand import testing_points as deadline_points
from repro.errors import AnalysisError
from repro.tasks.task import Task, TaskSet
from repro.workloads.example_dac99 import example_taskset


def _set(*specs):
    return TaskSet([
        Task(name=f"t{i}", wcet=c, period=p, deadline=d)
        for i, (c, p, d) in enumerate(specs)
    ])


class TestDemandBound:
    def test_zero_before_first_deadline(self):
        ts = _set((10, 100, None))
        assert demand_bound(ts, 50.0) == 0.0

    def test_step_at_each_deadline(self):
        ts = _set((10, 100, None))
        assert demand_bound(ts, 100.0) == 10.0
        assert demand_bound(ts, 199.0) == 10.0
        assert demand_bound(ts, 200.0) == 20.0

    def test_constrained_deadline_shifts_steps(self):
        ts = _set((10, 100, 60.0))
        assert demand_bound(ts, 59.0) == 0.0
        assert demand_bound(ts, 60.0) == 10.0

    def test_additive_over_tasks(self):
        ts = example_taskset()
        assert demand_bound(ts, 100.0) == pytest.approx(2 * 10 + 20 + 40)

    def test_negative_time_rejected(self):
        with pytest.raises(AnalysisError):
            demand_bound(_set((1, 10, None)), -1.0)


class TestTestingPoints:
    def test_sorted_unique(self):
        ts = example_taskset()
        points = list(deadline_points(ts, 400.0))
        assert points == sorted(points)
        assert len(points) == len(set(points))
        assert 50.0 in points and 80.0 in points and 100.0 in points

    def test_horizon_respected(self):
        points = list(deadline_points(example_taskset(), 150.0))
        assert max(points) <= 150.0


class TestFeasibility:
    def test_implicit_deadline_feasible_iff_u_at_most_one(self):
        assert edf_feasible(_set((50, 100, None), (50, 100, None)))
        assert not edf_feasible(_set((51, 100, None), (50, 100, None)))

    def test_table1_feasible_under_edf(self):
        assert edf_feasible(example_taskset())

    def test_constrained_deadlines_can_fail_below_u_one(self):
        ts = _set((30, 100, 40.0), (30, 100, 50.0))
        # U = 0.6 but 60 units are due by t = 50.
        assert not edf_feasible(ts)

    def test_speed_scaling(self):
        ts = _set((25, 100, None), (25, 100, None))  # U = 0.5
        assert edf_feasible(ts, speed=0.5)
        assert not edf_feasible(ts, speed=0.49)

    def test_horizon_bounds(self):
        ts = example_taskset()
        assert 0 < edf_testing_horizon(ts) <= ts.hyperperiod


class TestMinimumSpeed:
    def test_implicit_deadlines_give_utilization(self):
        ts = example_taskset()
        assert minimum_edf_speed(ts) == pytest.approx(0.85, abs=1e-4)

    def test_constrained_deadlines_force_higher_speed(self):
        ts = _set((20, 100, 40.0), (20, 100, 50.0))
        speed = minimum_edf_speed(ts)
        assert speed is not None
        assert speed > ts.utilization + 0.05
        assert edf_feasible(ts, speed + 1e-6)
        assert not edf_feasible(ts, speed - 1e-3)

    def test_infeasible_returns_none(self):
        assert minimum_edf_speed(_set((60, 100, None), (50, 100, None))) is None
