"""Unit tests for per-task WCET sensitivity analysis."""

import pytest

from repro.analysis.rta import is_schedulable
from repro.analysis.sensitivity import wcet_margins
from repro.tasks.priority import rate_monotonic
from repro.tasks.task import Task, TaskSet
from repro.workloads.example_dac99 import example_taskset
from repro.workloads.ins import ins_taskset


class TestTable1Sensitivity:
    def test_tau2_cannot_grow(self):
        """The paper's exact claim: 'if tau2 were to take a little longer
        to complete, tau3 would miss its deadline at time 100'."""
        result = wcet_margins(example_taskset())
        assert result.margins["tau2"] == pytest.approx(0.0, abs=1e-4)

    def test_tau1_cannot_grow_either(self):
        # tau3's response sits exactly on its cliff; every higher-priority
        # task is pinned.
        result = wcet_margins(example_taskset())
        assert result.margins["tau1"] == pytest.approx(0.0, abs=1e-4)

    def test_critical_task_is_a_zero_margin_one(self):
        result = wcet_margins(example_taskset())
        assert result.critical_margin == pytest.approx(0.0, abs=1e-4)


class TestMarginsConsistency:
    def test_margins_are_tight(self):
        """Inflating by slightly less than the margin stays schedulable;
        slightly more fails (or hits the deadline ceiling)."""
        ts = rate_monotonic(TaskSet([
            Task(name="a", wcet=10.0, period=100.0),
            Task(name="b", wcet=20.0, period=200.0),
        ]))
        result = wcet_margins(ts)
        for task in ts:
            margin = result.margins[task.name]
            assert margin > 0
            inflated = ts.with_tasks([
                t if t.name != task.name
                else Task(name=t.name, wcet=t.wcet + margin * 0.99,
                          period=t.period, priority=t.priority)
                for t in ts
            ])
            assert is_schedulable(inflated)

    def test_ins_bottleneck_is_meaningful(self):
        result = wcet_margins(rate_monotonic(ins_taskset()))
        assert result.critical_margin > 0  # INS has real slack
        assert result.critical_task in {t.name for t in ins_taskset()}

    def test_unschedulable_set_reports_zero(self):
        ts = rate_monotonic(TaskSet([
            Task(name="a", wcet=30.0, period=50.0),
            Task(name="b", wcet=45.0, period=100.0),
        ]))
        result = wcet_margins(ts)
        assert result.margins["b"] == 0.0
