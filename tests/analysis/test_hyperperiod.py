"""Unit tests for hyperperiod and busy-period utilities."""

import pytest

from repro.analysis.hyperperiod import (
    first_idle_instant,
    hyperperiod,
    hyperperiod_jobs,
    level_i_busy_period,
    releases_within,
)
from repro.tasks.priority import rate_monotonic
from repro.tasks.task import Task, TaskSet
from repro.workloads.example_dac99 import example_taskset
from repro.workloads.ins import ins_taskset


class TestHyperperiod:
    def test_table1(self):
        assert hyperperiod(example_taskset()) == 400.0

    def test_ins_is_five_seconds(self):
        assert hyperperiod(ins_taskset()) == 5_000_000.0

    def test_job_count_table1(self):
        # 400/50 + 400/80 + 400/100 = 8 + 5 + 4
        assert hyperperiod_jobs(example_taskset()) == 17

    def test_job_count_quantifies_static_table_blowup(self):
        """§2.2's objection: mutually-prime periods explode the LCM table."""
        ts = TaskSet([Task(name="a", wcet=1, period=997),
                      Task(name="b", wcet=1, period=1009)])
        assert hyperperiod(ts) == 997 * 1009
        assert hyperperiod_jobs(ts) == 997 + 1009


class TestReleases:
    def test_release_grid(self):
        events = releases_within(example_taskset(), 200.0)
        times = [t for t, _ in events]
        assert times == sorted(times)
        assert events[0] == (0.0, "tau1")  # priority order at t=0
        assert (50.0, "tau1") in events
        assert (80.0, "tau2") in events
        assert (100.0, "tau3") in events
        assert all(t < 200.0 for t, _ in events)

    def test_simultaneous_ordered_by_priority(self):
        at_zero = [name for t, name in releases_within(example_taskset(), 1.0)]
        assert at_zero == ["tau1", "tau2", "tau3"]

    def test_phases_respected(self):
        ts = TaskSet([Task(name="a", wcet=1, period=10, phase=3.0, priority=0)])
        events = releases_within(ts, 25.0)
        assert [t for t, _ in events] == [3.0, 13.0, 23.0]


class TestBusyPeriod:
    def test_level_zero_is_first_job(self):
        ts = example_taskset()
        assert level_i_busy_period(ts, 1) == 10.0

    def test_first_idle_instant_table1(self):
        """The paper's Figure 2(a): continuous execution from 0 to 80."""
        assert first_idle_instant(example_taskset()) == 80.0

    def test_diverges_on_overload(self):
        ts = rate_monotonic(TaskSet([
            Task(name="a", wcet=30, period=50),
            Task(name="b", wcet=30, period=50),
        ]))
        with pytest.raises(OverflowError):
            first_idle_instant(ts)

    def test_no_tasks_at_level(self):
        ts = example_taskset()
        with pytest.raises(ValueError):
            level_i_busy_period(ts, 0)
