"""Unit tests for utilisation-based schedulability tests."""

import math

import pytest

from repro.analysis.utilization import (
    harmonic_chains,
    is_fully_harmonic,
    liu_layland_bound,
    passes_edf_bound,
    passes_hyperbolic_bound,
    passes_liu_layland,
    total_utilization,
)
from repro.tasks.task import Task, TaskSet
from repro.workloads.example_dac99 import example_taskset
from repro.workloads.flight_control import flight_control_taskset


def _set(*ct_pairs):
    return TaskSet([
        Task(name=f"t{i}", wcet=c, period=t) for i, (c, t) in enumerate(ct_pairs)
    ])


class TestBounds:
    def test_liu_layland_values(self):
        assert liu_layland_bound(1) == pytest.approx(1.0)
        assert liu_layland_bound(2) == pytest.approx(2 * (2**0.5 - 1))
        assert liu_layland_bound(100) == pytest.approx(math.log(2), abs=0.005)

    def test_liu_layland_rejects_zero(self):
        with pytest.raises(ValueError):
            liu_layland_bound(0)

    def test_bound_decreases_with_n(self):
        bounds = [liu_layland_bound(n) for n in range(1, 20)]
        assert bounds == sorted(bounds, reverse=True)

    def test_table1_exceeds_ll_but_is_schedulable(self):
        """U = 0.85 > LL bound for 3 tasks (0.78): the test is only
        sufficient — RTA proves the set schedulable anyway."""
        ts = example_taskset()
        assert total_utilization(ts) == pytest.approx(0.85)
        assert not passes_liu_layland(ts)

    def test_low_utilization_passes(self):
        assert passes_liu_layland(_set((1, 10), (1, 17), (1, 29)))

    def test_hyperbolic_dominates_liu_layland(self):
        # Any set passing LL must pass hyperbolic.
        ts = _set((2, 10), (3, 20), (5, 50))
        if passes_liu_layland(ts):
            assert passes_hyperbolic_bound(ts)

    def test_hyperbolic_accepts_harder_sets(self):
        # Two tasks at U=0.41 each: product (1.41)^2 = 1.99 <= 2 passes,
        # while LL bound for n=2 is 0.828 < 0.82... equal-ish; craft clearly:
        ts = _set((41, 100), (41, 100))
        assert passes_hyperbolic_bound(ts)

    def test_edf_bound(self):
        assert passes_edf_bound(_set((50, 100), (49, 100)))
        assert not passes_edf_bound(_set((60, 100), (50, 100)))

    def test_edf_bound_constrained_uses_density(self):
        ts = TaskSet([Task(name="a", wcet=40, period=100, deadline=50),
                      Task(name="b", wcet=30, period=100, deadline=60)])
        assert not passes_edf_bound(ts)  # density 0.8 + 0.5 = 1.3


class TestHarmonic:
    def test_single_chain(self):
        assert harmonic_chains(_set((1, 10), (1, 20), (1, 40))) == 1
        assert is_fully_harmonic(_set((1, 10), (1, 20), (1, 40)))

    def test_flight_control_is_harmonic(self):
        assert is_fully_harmonic(flight_control_taskset())

    def test_table1_not_harmonic(self):
        assert not is_fully_harmonic(example_taskset())
        assert harmonic_chains(example_taskset()) >= 2
