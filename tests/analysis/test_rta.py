"""Unit tests for exact response-time analysis."""

import pytest

from repro.analysis.rta import analyze, is_schedulable, response_time, with_overhead
from repro.errors import AnalysisError
from repro.tasks.priority import rate_monotonic
from repro.tasks.task import Task, TaskSet
from repro.workloads.example_dac99 import example_taskset


class TestResponseTime:
    def test_highest_priority_is_own_wcet(self):
        t = Task(name="a", wcet=10.0, period=50.0, priority=0)
        assert response_time(t, []) == 10.0

    def test_table1_matches_hand_computation(self):
        ts = example_taskset()
        ordered = ts.by_priority()
        assert response_time(ordered[0], []) == 10.0
        assert response_time(ordered[1], ordered[:1]) == 30.0
        # tau3: 40 + 2x10 (tau1) + 1x20 (tau2) = 80 at the fixed point.
        assert response_time(ordered[2], ordered[:2]) == 80.0

    def test_unschedulable_returns_none(self):
        hp = [Task(name="h", wcet=30.0, period=50.0, priority=0)]
        t = Task(name="l", wcet=30.0, period=100.0, priority=1)
        # Demand 30 + 2x30 = 90 < 100, fine; tighten the deadline:
        t2 = Task(name="l2", wcet=30.0, period=100.0, deadline=55.0, priority=1)
        assert response_time(t, hp) is not None
        assert response_time(t2, hp) is None

    def test_custom_limit(self):
        hp = [Task(name="h", wcet=10.0, period=50.0, priority=0)]
        t = Task(name="l", wcet=30.0, period=100.0, priority=1)
        assert response_time(t, hp, limit=39.0) is None
        assert response_time(t, hp, limit=40.0) == 40.0

    def test_exact_boundary_release_not_counted(self):
        # A job finishing exactly at an interfering release is not delayed
        # by it: ceil uses an epsilon guard.
        hp = [Task(name="h", wcet=20.0, period=80.0, priority=0)]
        t = Task(name="l", wcet=60.0, period=80.0, priority=1)
        assert response_time(t, hp) == 80.0


class TestAnalyze:
    def test_table1_schedulable_with_slacks(self):
        result = analyze(example_taskset())
        assert result.schedulable
        assert result.response_times == {"tau1": 10.0, "tau2": 30.0, "tau3": 80.0}
        assert result.slack == {"tau1": 40.0, "tau2": 50.0, "tau3": 20.0}
        assert result.worst_slack() == 20.0

    def test_table1_is_tight(self):
        """Inflating tau2 slightly makes tau3 miss — the paper's claim."""
        base = example_taskset()
        inflated = base.with_tasks([
            t if t.name != "tau2"
            else Task(name="tau2", wcet=21.0, period=80.0, priority=t.priority)
            for t in base
        ])
        assert not analyze(inflated).schedulable

    def test_unschedulable_reports_none_and_flag(self):
        ts = rate_monotonic(TaskSet([
            Task(name="a", wcet=30.0, period=50.0),
            Task(name="b", wcet=45.0, period=100.0),
        ]))
        result = analyze(ts)
        assert not result.schedulable
        assert result.response_times["b"] is None
        assert result.worst_slack() is None

    def test_requires_priorities(self):
        ts = TaskSet([Task(name="a", wcet=1.0, period=5.0)])
        from repro.errors import InvalidTaskSetError

        with pytest.raises(InvalidTaskSetError):
            analyze(ts)

    def test_is_schedulable_wrapper(self):
        assert is_schedulable(example_taskset())


class TestWithOverhead:
    def test_inflates_wcets(self):
        ts = example_taskset()
        inflated = with_overhead(ts, 2.0)
        assert [t.wcet for t in inflated] == [12.0, 22.0, 42.0]
        assert [t.bcet for t in inflated] == [12.0, 22.0, 42.0]

    def test_zero_overhead_identity(self):
        ts = example_taskset()
        assert [t.wcet for t in with_overhead(ts, 0.0)] == [t.wcet for t in ts]

    def test_negative_rejected(self):
        with pytest.raises(AnalysisError):
            with_overhead(example_taskset(), -1.0)

    def test_any_overhead_breaks_table1(self):
        # tau3's response sits exactly on tau2's second release (R3 = 80),
        # so *any* scheduler overhead pulls in extra interference and the
        # set fails — the paper's warning that the LPFPS run-time additions
        # must stay negligible is not rhetorical.
        ts = example_taskset()
        assert is_schedulable(with_overhead(ts, 0.0))
        assert not is_schedulable(with_overhead(ts, 0.5))
