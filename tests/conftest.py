"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.power.processor import ProcessorSpec
from repro.tasks.priority import rate_monotonic
from repro.tasks.task import Task, TaskSet
from repro.workloads.example_dac99 import example_taskset


@pytest.fixture
def table1():
    """The paper's Table 1 task set with its priorities."""
    return example_taskset()


@pytest.fixture
def arm8():
    """The paper's ARM8-like processor spec."""
    return ProcessorSpec.arm8()


@pytest.fixture
def ideal():
    """Idealised processor: continuous grid, instant ramps, free sleep."""
    return ProcessorSpec.ideal()


@pytest.fixture
def two_tasks():
    """A tiny RM-prioritised set used by engine unit tests."""
    return rate_monotonic(
        TaskSet(
            [
                Task(name="hi", wcet=10.0, period=100.0),
                Task(name="lo", wcet=30.0, period=200.0),
            ],
            name="two-tasks",
        )
    )
