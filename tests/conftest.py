"""Shared fixtures for the test suite, plus the CI hypothesis profile."""

from __future__ import annotations

import os

import pytest

from repro.power.processor import ProcessorSpec
from repro.tasks.priority import rate_monotonic
from repro.tasks.task import Task, TaskSet
from repro.workloads.example_dac99 import example_taskset

try:  # hypothesis is a test-only dependency; skip profiles without it
    from hypothesis import HealthCheck, settings

    # Pinned via HYPOTHESIS_PROFILE=ci in .github/workflows/ci.yml:
    # derandomized so a red CI run reproduces locally from the printed
    # example alone, and budgeted so shared runners don't blow the
    # per-test deadline on scheduler jitter.
    settings.register_profile(
        "ci",
        derandomize=True,
        max_examples=50,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "default"))
except ImportError:  # pragma: no cover
    pass


@pytest.fixture
def table1():
    """The paper's Table 1 task set with its priorities."""
    return example_taskset()


@pytest.fixture
def arm8():
    """The paper's ARM8-like processor spec."""
    return ProcessorSpec.arm8()


@pytest.fixture
def ideal():
    """Idealised processor: continuous grid, instant ramps, free sleep."""
    return ProcessorSpec.ideal()


@pytest.fixture
def two_tasks():
    """A tiny RM-prioritised set used by engine unit tests."""
    return rate_monotonic(
        TaskSet(
            [
                Task(name="hi", wcet=10.0, period=100.0),
                Task(name="lo", wcet=30.0, period=200.0),
            ],
            name="two-tasks",
        )
    )
