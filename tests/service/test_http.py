"""HTTP front end: routes, status codes, error mapping, metrics schema."""

from __future__ import annotations

import json
import urllib.request

import pytest

from repro.service.broker import ServiceGuards
from repro.service.client import (
    ServiceClient,
    broker_send,
    run_closed_loop,
    run_open_loop,
)
from repro.service.server import ScheduleService, running_server

ENERGY = {"kind": "energy", "app": "example", "duration": 400.0, "seed": 1}


@pytest.fixture(scope="module")
def service_url():
    service = ScheduleService(jobs=1)
    with running_server(service) as server:
        yield server.url
    service.close()


@pytest.fixture(scope="module")
def client(service_url):
    return ServiceClient(service_url, timeout_s=60.0)


class TestRoutes:
    def test_health(self, client):
        status, payload = client.health()
        assert status == 200
        assert payload == {"ok": True, "status": "serving"}

    def test_schedulers_listing(self, client):
        status, payload = ServiceClient(client.url)._get("/v1/schedulers")
        assert status == 200
        assert "lpfps" in payload["schedulers"]

    def test_workloads_listing(self, client):
        status, payload = ServiceClient(client.url)._get("/v1/workloads")
        assert status == 200
        assert {"example", "ins", "cnc"} <= set(payload["workloads"])

    def test_unknown_path_is_404(self, client):
        status, payload = ServiceClient(client.url)._get("/v1/nope")
        assert status == 404
        assert payload["ok"] is False
        assert payload["error_kind"] == "bad-request"


class TestQuery:
    def test_energy_round_trip(self, client):
        status, payload = client.query(ENERGY)
        assert status == 200
        assert payload["ok"] is True
        assert payload["kind"] == "energy"
        assert payload["scheduler"] == "lpfps"
        assert payload["average_power"] > 0

    def test_repeat_is_served_from_cache(self, client):
        first = client.query(ENERGY)[1]
        second = client.query(ENERGY)[1]
        assert first == second

    def test_schedulability_kind(self, client):
        status, payload = client.query({"kind": "schedulability", "app": "cnc"})
        assert status == 200
        assert payload["schedulable"] is True

    def test_rta_kind(self, client):
        status, payload = client.query({"kind": "rta", "app": "ins"})
        assert status == 200
        assert payload["schedulable"] is True
        assert set(payload["response_times"]) == set(payload["slack"])
        assert all(value > 0 for value in payload["response_times"].values())

    def test_malformed_query_is_400(self, client):
        status, payload = client.query({"kind": "energy"})
        assert status == 400
        assert "app" in payload["error"] or "tasks" in payload["error"]
        assert payload["error_kind"] == "bad-request"

    def test_unknown_field_is_400(self, client):
        status, payload = client.query({**ENERGY, "wat": 1})
        assert status == 400
        assert "wat" in payload["error"]

    def test_non_json_body_is_400(self, service_url):
        request = urllib.request.Request(
            service_url + "/v1/query", data=b"{torn", method="POST"
        )
        with pytest.raises(urllib.error.HTTPError) as info:
            urllib.request.urlopen(request, timeout=30)
        assert info.value.code == 400

    def test_empty_body_is_400(self, service_url):
        request = urllib.request.Request(
            service_url + "/v1/query", data=b"", method="POST"
        )
        with pytest.raises(urllib.error.HTTPError) as info:
            urllib.request.urlopen(request, timeout=30)
        assert info.value.code == 400

    def test_request_timeout_is_504(self, client):
        status, payload = client.query(
            {
                "kind": "energy",
                "app": "cnc",
                "duration": 50_000.0,
                "seed": 77,
                "timeout_s": 1e-4,
            }
        )
        assert status == 504
        assert "retry" in payload["error"]
        assert payload["error_kind"] == "timeout"

    def test_bad_timeout_is_400(self, client):
        status, _ = client.query({**ENERGY, "timeout_s": -1})
        assert status == 400

    def test_every_error_payload_carries_a_taxonomy_kind(self, client):
        from repro.errors import ERROR_KINDS

        for query in (
            {"kind": "energy"},            # missing app
            {**ENERGY, "wat": 1},          # unknown field
            {**ENERGY, "timeout_s": -1},   # invalid knob
            {"kind": "nope"},              # unknown kind
        ):
            status, payload = client.query(query)
            assert status >= 400
            assert payload["error_kind"] in ERROR_KINDS


def test_admission_overflow_returns_503_with_retry_after():
    guards = ServiceGuards(max_pending=1, batch_window_s=0.5)
    service = ScheduleService(guards=guards, jobs=1)
    with running_server(service) as server:
        client = ServiceClient(server.url, timeout_s=60.0)
        try:
            first = {"kind": "energy", "app": "example", "duration": 400.0,
                     "seed": 101, "timeout_s": 1e-4}
            assert client.query(first)[0] == 504  # occupy the pending slot
            request = urllib.request.Request(
                server.url + "/v1/query",
                data=json.dumps(
                    {"kind": "energy", "app": "example", "duration": 400.0,
                     "seed": 102}
                ).encode(),
                headers={"Content-Type": "application/json"},
                method="POST",
            )
            with pytest.raises(urllib.error.HTTPError) as info:
                urllib.request.urlopen(request, timeout=30)
            assert info.value.code == 503
            assert info.value.headers["Retry-After"] == "1"
            shed = json.loads(info.value.read().decode("utf-8"))
            assert shed["error_kind"] == "overload"
            # Degradation is informative: the shed answer reports how
            # deep the queue was so clients can pace themselves.
            assert shed["queue_depth"] == 1
        finally:
            service.close()


def test_cached_answers_survive_overload():
    """Guarantee-preserving degradation: only *fresh* work is shed.

    With the one pending slot occupied by a stuck simulation, a query
    whose answer is already cached must still be served 200 — cache hits
    never touch admission control.
    """
    guards = ServiceGuards(max_pending=1, batch_window_s=0.5)
    service = ScheduleService(guards=guards, jobs=1)
    with running_server(service) as server:
        client = ServiceClient(server.url, timeout_s=60.0)
        try:
            warm = {"kind": "energy", "app": "example", "duration": 400.0,
                    "seed": 201}
            status, cached = client.query(warm)
            assert status == 200
            stuck = {"kind": "energy", "app": "cnc", "duration": 50_000.0,
                     "seed": 202, "timeout_s": 1e-4}
            assert client.query(stuck)[0] == 504  # occupy the pending slot
            fresh = {"kind": "energy", "app": "example", "duration": 400.0,
                     "seed": 203}
            status, shed = client.query(fresh)
            assert status == 503
            assert shed["error_kind"] == "overload"
            status, again = client.query(warm)
            assert status == 200
            assert again == cached
        finally:
            service.close()


def test_metrics_snapshot_is_bench_metrics_v1(client):
    client.query(ENERGY)
    status, payload = client.metrics()
    assert status == 200
    assert payload["schema"] == "bench-metrics/v1"
    assert payload["benchmark"] == "service"
    metrics = {m["name"]: m["value"] for m in payload["tests"]["service"]["metrics"]}
    assert metrics["requests"] >= 1
    assert "cache_hits" in metrics
    assert "hit_latency_p50_ms" in metrics
    assert "cache_memory_entries" in metrics


class TestLoadGenerators:
    def test_closed_loop_over_http(self, client):
        requests = [dict(ENERGY, seed=s) for s in (1, 2)] * 3
        report = run_closed_loop(client.query, requests, concurrency=2)
        assert report.requests == 6
        assert report.ok == 6
        assert report.dropped == 0
        assert report.throughput_rps > 0
        assert len(report.latencies_s) == 6
        assert report.latency_percentiles()["p50"] > 0

    def test_open_loop_tracks_slip_and_statuses(self):
        service = ScheduleService(jobs=1)
        try:
            send = broker_send(service)
            requests = [dict(ENERGY, seed=s) for s in range(4)] * 2
            report = run_open_loop(send, requests, rate_rps=200.0, workers=8)
            assert report.requests == 8
            assert report.ok == 8
            assert report.dropped == 0
        finally:
            service.close()

    def test_open_loop_rejects_bad_rate(self):
        with pytest.raises(ValueError):
            run_open_loop(lambda r: (200, {}), [], rate_rps=0.0)
