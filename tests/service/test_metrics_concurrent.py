"""``/v1/metrics`` under concurrent load: exact counters, valid payloads.

A pool of writer threads hammers ``/v1/query`` (a mix of repeats, so
both the hit and miss paths run) while reader threads poll
``/v1/metrics``.  Every snapshot a reader sees must be a valid
bench-metrics/v1 payload — no torn JSON, no schema drift — and once the
writers drain, the counters must be exact: the registry serialises
updates under one lock, so concurrency may interleave requests but can
never lose one.
"""

from __future__ import annotations

import threading

import pytest

from repro.obs.schema import validate_bench_metrics
from repro.service.client import ServiceClient
from repro.service.server import ScheduleService, running_server

WRITERS = 6
REQUESTS_PER_WRITER = 8
READERS = 2


@pytest.fixture(scope="module")
def hammered():
    """Run the hammer once; yield the service and the collected errors."""
    service = ScheduleService(jobs=1)
    errors: list = []
    with running_server(service) as server:
        client = ServiceClient(server.url, timeout_s=120.0)
        stop = threading.Event()

        def write(worker: int) -> None:
            for i in range(REQUESTS_PER_WRITER):
                # Half the seeds repeat across workers → cache hits.
                seed = (worker * REQUESTS_PER_WRITER + i) % 5
                try:
                    status, payload = client.query(
                        {
                            "kind": "energy",
                            "app": "example",
                            "duration": 400.0,
                            "seed": seed,
                        }
                    )
                    if status != 200 or payload.get("ok") is not True:
                        errors.append(("query", status, payload))
                except Exception as exc:  # noqa: BLE001 - collected
                    errors.append(("query", exc))

        def read() -> None:
            while not stop.is_set():
                try:
                    status, payload = client.metrics()
                    if status != 200:
                        errors.append(("metrics", status))
                        continue
                    problems = validate_bench_metrics(payload)
                    if problems:
                        errors.append(("metrics", problems))
                except Exception as exc:  # noqa: BLE001 - collected
                    errors.append(("metrics", exc))

        readers = [threading.Thread(target=read) for _ in range(READERS)]
        writers = [
            threading.Thread(target=write, args=(w,)) for w in range(WRITERS)
        ]
        for t in readers + writers:
            t.start()
        for t in writers:
            t.join()
        stop.set()
        for t in readers:
            t.join()

        status, final = client.metrics()
        assert status == 200
        yield final, errors
    service.close()


def test_no_request_failed_under_load(hammered):
    _, errors = hammered
    assert errors == []


def test_final_snapshot_is_valid_bench_metrics(hammered):
    final, _ = hammered
    assert final["schema"] == "bench-metrics/v1"
    assert validate_bench_metrics(final) == []
    assert {"service", "obs"} <= set(final["tests"])


def test_request_counter_is_exact(hammered):
    final, _ = hammered
    service_metrics = {
        m["name"]: m["value"] for m in final["tests"]["service"]["metrics"]
    }
    total = WRITERS * REQUESTS_PER_WRITER
    assert service_metrics["requests"] == total
    # Every energy request takes exactly one of the three admission
    # paths, so the counters partition the request count exactly.
    assert (
        service_metrics["cache_hits"]
        + service_metrics["dedup_hits"]
        + service_metrics["dispatched"]
        == total
    )
    # 5 distinct seeds on one (app, scheduler, duration) point: in-flight
    # dedupe guarantees each unique cell is computed exactly once.
    assert service_metrics["dispatched"] == 5


def test_broker_spans_count_every_submission(hammered):
    final, _ = hammered
    obs_metrics = {
        m["name"]: m["value"] for m in final["tests"]["obs"]["metrics"]
    }
    total = WRITERS * REQUESTS_PER_WRITER
    # Every submit probes the cache exactly once, hit or miss.
    assert obs_metrics["broker.cache_lookup_count"] == total
    for name in (
        "broker.dedupe_count",
        "broker.batch_window_count",
        "broker.dispatch_count",
        "broker.serialize_count",
        "broker.batch_size_count",
    ):
        assert obs_metrics[name] >= 1, name
    assert obs_metrics["broker.dispatch_total_s"] > 0.0
