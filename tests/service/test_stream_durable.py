"""Durable campaigns: store, hub replay, idempotent HTTP, 410 + resume.

The tentpole contract of ISSUE 10, bottom-up: the on-disk
:class:`CampaignStore` persists exactly what was published (and only
intact prefixes of it), the hub replays it after a "restart" (a fresh
hub over the same directory), re-submitting an identical scenario is
idempotent, and an evicted campaign answers 410 with everything a
client needs to resume.
"""

from __future__ import annotations

import json
import os
import time
import urllib.error
import urllib.request

import pytest

from repro.errors import ConfigurationError, ServiceError
from repro.obs.registry import Registry
from repro.service.client import ServiceClient
from repro.service.durability import CampaignStore, campaign_key
from repro.service.server import ScheduleService, running_server
from repro.service.stream import CampaignEvicted, CampaignHub


class TestCampaignKey:
    def test_is_deterministic_and_content_addressed(self):
        assert campaign_key("f" * 64) == campaign_key("f" * 64)
        assert campaign_key("f" * 64) != campaign_key("e" * 64)

    def test_execution_mode_changes_the_key(self):
        assert campaign_key("f" * 64, "exact") != campaign_key("f" * 64, "fast")

    def test_shape_is_c_plus_16_hex(self):
        key = campaign_key("f" * 64)
        assert key.startswith("c") and len(key) == 17
        int(key[1:], 16)  # hex or raise


class TestCampaignStore:
    def test_manifest_round_trips(self, tmp_path):
        store = CampaignStore(tmp_path)
        assert store.write_manifest("c1", {"meta": {"scenario": "x"}})
        manifest = store.load_manifest("c1")
        assert manifest["meta"] == {"scenario": "x"}
        assert manifest["campaign_id"] == "c1"
        assert list(store.list_manifests()) == ["c1"]

    def test_missing_manifest_is_none(self, tmp_path):
        assert CampaignStore(tmp_path).load_manifest("c404") is None

    def test_events_append_and_load_in_order(self, tmp_path):
        store = CampaignStore(tmp_path)
        for seq in (1, 2, 3):
            assert store.append_event(
                "c1", {"seq": seq, "kind": "cell", "data": {"cell": seq - 1}}
            )
        store.close()
        events = store.load_events("c1")
        assert [event["seq"] for event in events] == [1, 2, 3]
        assert events[0]["data"] == {"cell": 0}

    def test_torn_suffix_is_ignored_not_replayed(self, tmp_path):
        store = CampaignStore(tmp_path)
        store.append_event("c1", {"seq": 1, "kind": "cell", "data": {}})
        store.append_event("c1", {"seq": 2, "kind": "done", "data": {}})
        store.close()
        with open(store.events_path("c1"), "ab") as handle:
            handle.write(b'{"v": 1, "seq": 3, "kind": "cel')  # torn write
        assert [e["seq"] for e in store.load_events("c1")] == [1, 2]

    def test_corrupt_interior_truncates_to_intact_prefix(self, tmp_path):
        store = CampaignStore(tmp_path)
        for seq in (1, 2, 3):
            store.append_event("c1", {"seq": seq, "kind": "cell", "data": {}})
        store.close()
        path = store.events_path("c1")
        lines = path.read_bytes().splitlines(keepends=True)
        lines[1] = lines[1][:10] + b"X" + lines[1][11:]  # flip a byte
        path.write_bytes(b"".join(lines))
        # Prefix-exact read: everything after the first bad record is
        # suspect (its durability ordering is gone), so only seq 1 loads.
        assert [e["seq"] for e in store.load_events("c1")] == [1]

    def test_scrub_repair_truncates_event_logs(self, tmp_path):
        store = CampaignStore(tmp_path)
        store.write_manifest("c1", {"meta": {}})
        store.append_event("c1", {"seq": 1, "kind": "cell", "data": {}})
        store.close()
        with open(store.events_path("c1"), "ab") as handle:
            handle.write(b"garbage\n")
        obs = Registry()
        report = store.scrub(repair=True, obs=obs)
        assert report["events_corrupt"] == 1
        assert report["logs_truncated"] == 1
        assert obs.counter_value("cache.scrub_events_truncated") == 1
        # The log is now fully intact: a re-scrub finds nothing.
        assert store.scrub()["events_corrupt"] == 0
        assert [e["seq"] for e in store.load_events("c1")] == [1]

    def test_scrub_repair_quarantines_corrupt_manifest(self, tmp_path):
        store = CampaignStore(tmp_path)
        store.write_manifest("c1", {"meta": {}})
        store.manifest_path("c1").write_text("{not json")
        report = store.scrub(repair=True)
        assert report["manifests_corrupt"] == 1
        assert store.load_manifest("c1") is None
        assert store.scrub()["manifests"] == 0

    def test_scrub_survives_an_unreadable_event_log(self, tmp_path):
        store = CampaignStore(tmp_path)
        store.append_event("cgood", {"seq": 1, "kind": "done", "data": {}})
        store.close()
        # An events "file" that cannot be read (here: a directory) must
        # become a report problem, never an exception out of scrub —
        # one bad file must not stop the server from starting.
        (store.campaigns_dir / "cbad.events.jsonl").mkdir()
        report = store.scrub(repair=True)
        assert report["event_logs"] == 2
        assert any(
            problem["reason"].startswith("unreadable:")
            for problem in report["problems"]
        )
        assert [e["seq"] for e in store.load_events("cgood")] == [1]
        # And the service constructor (which scrubs) starts cleanly too.
        ScheduleService(jobs=1, checkpoint_dir=tmp_path).close()


class TestCrossProcessLeases:
    def test_lease_is_exclusive_across_stores(self, tmp_path):
        # Two stores over one directory behave like two fleet replicas:
        # flock conflicts even between descriptors in one process.
        owner, sibling = CampaignStore(tmp_path), CampaignStore(tmp_path)
        assert owner.acquire_lease("c1")
        assert owner.acquire_lease("c1")  # idempotent for the holder
        assert owner.owns_lease("c1")
        assert not sibling.acquire_lease("c1")
        owner.release_lease("c1")
        assert not owner.owns_lease("c1")
        assert sibling.acquire_lease("c1")
        sibling.release_lease("c1")

    def test_scrub_repair_never_rewrites_a_leased_log(self, tmp_path):
        # The sibling-restart hazard from the fleet deployment: replica
        # A is live (lease held, append handle open) while replica B
        # restarts and scrubs.  B must not atomically rewrite A's log —
        # A's later fsyncs would land on an unlinked inode.
        owner = CampaignStore(tmp_path)
        owner.append_event("c1", {"seq": 1, "kind": "cell", "data": {}})
        assert owner.acquire_lease("c1")
        with open(owner.events_path("c1"), "ab") as handle:
            handle.write(b"garbage\n")
        before = owner.events_path("c1").read_bytes()

        sibling = CampaignStore(tmp_path)
        report = sibling.scrub(repair=True)
        assert report["events_corrupt"] == 1
        assert report["logs_truncated"] == 0
        assert any(
            problem["reason"] == "repair-skipped:lease-held"
            for problem in report["problems"]
        )
        assert owner.events_path("c1").read_bytes() == before
        owner.close()
        owner.release_lease("c1")
        # Once the owner is gone the torn line is repairable as usual.
        report = sibling.scrub(repair=True)
        assert report["logs_truncated"] == 1
        assert [e["seq"] for e in sibling.load_events("c1")] == [1]

    def test_submit_attaches_when_a_sibling_owns_the_campaign(self, tmp_path):
        from repro.scenarios import load_pack

        scenario = load_pack("weakly_hard")
        cid = campaign_key(scenario.fingerprint(), "exact")
        sibling = CampaignStore(tmp_path)
        assert sibling.acquire_lease(cid)

        service = ScheduleService(jobs=1, checkpoint_dir=tmp_path)
        try:
            payload = service.submit_scenario({"pack": "weakly_hard"})
            # Never a second writer: the submission attaches instead of
            # spawning a runner that would interleave seq numbers with
            # the sibling's.
            assert payload["campaign_id"] == cid
            assert payload["state"] == "running"
            assert payload["attached"] is True
            assert not service._active_campaigns
            # Lease released (sibling "crashed"): the same submission
            # now starts the campaign here.
            sibling.release_lease(cid)
            payload = service.submit_scenario({"pack": "weakly_hard"})
            assert payload["state"] == "running"
            assert "attached" not in payload
            events = list(service.campaigns.subscribe(cid))
            assert events[-1]["kind"] == "done"
        finally:
            service.close()

    def test_resume_campaigns_skips_a_sibling_owned_orphan(self, tmp_path):
        from repro.scenarios import load_pack

        scenario = load_pack("weakly_hard")
        cid = campaign_key(scenario.fingerprint(), "exact")
        seed = CampaignStore(tmp_path)
        seed.write_manifest(
            cid,
            {
                "meta": {
                    "scenario": scenario.name,
                    "fingerprint": scenario.fingerprint(),
                    "cells": 2,
                    "execution": "exact",
                },
                "scenario_document": scenario.canonical_document(),
                "fingerprint": scenario.fingerprint(),
                "jobs": 1,
                "execution": "exact",
                "created_s": time.time(),
            },
        )
        seed.append_event(cid, {"seq": 1, "kind": "cell", "data": {"cell": 0}})
        seed.close()
        assert seed.acquire_lease(cid)  # the live sibling running it

        service = ScheduleService(jobs=1, checkpoint_dir=tmp_path)
        try:
            assert service.resume_campaigns() == []
            seed.release_lease(cid)  # the sibling dies
            assert service.resume_campaigns() == [cid]
            events = list(service.campaigns.subscribe(cid))
            assert events[-1]["kind"] == "done"
        finally:
            service.close()


class TestAdoptionRepair:
    def test_repair_log_truncates_a_torn_tail(self, tmp_path):
        store = CampaignStore(tmp_path)
        store.append_event("c1", {"seq": 1, "kind": "cell", "data": {}})
        store.close()
        with open(store.events_path("c1"), "ab") as handle:
            handle.write(b'{"v": 1, "seq": 2, "kind": "cel')  # torn
        intact = store.repair_log("c1")
        assert [e["seq"] for e in intact] == [1]
        # The tail is gone from disk: a later append stays readable.
        assert store.append_event("c1", {"seq": 2, "kind": "done", "data": {}})
        store.close()
        assert [e["seq"] for e in store.load_events("c1")] == [1, 2]

    def test_refresh_folds_the_durable_tail_into_a_stale_copy(self, tmp_path):
        # The live fleet hand-off: replica B replayed the log early, the
        # owner A kept appending durably, A died, B adopts.  B's next
        # seq must continue the *disk* log, not its stale replay.
        owner, _ = _durable_hub(tmp_path)
        owner.store.write_manifest("cabc", {"meta": {}})
        cid = owner.create({}, campaign_id="cabc")
        owner.publish(cid, "cell", {"cell": 0})

        stale, obs = _durable_hub(tmp_path)
        assert stale.load_persisted() == [cid]  # fast copy: 1 event
        owner.publish(cid, "cell", {"cell": 1})
        owner.publish(cid, "cell", {"cell": 2})  # disk: 3 events

        stale.refresh(cid)
        events, _ = stale.events_since(cid)
        assert [e["data"]["cell"] for e in events] == [0, 1, 2]
        assert obs.counter_value("stream.campaigns_refreshed") == 1
        # Appends now continue gaplessly after the durable tail.
        assert stale.publish(cid, "cell", {"cell": 3}) == 4
        restarted, _ = _durable_hub(tmp_path)
        restarted.load_persisted()
        replayed, _ = restarted.events_since(cid)
        assert [e["seq"] for e in replayed] == [1, 2, 3, 4]


class TestDurabilityDegraded:
    def test_failed_append_fails_the_campaign_loudly(self, tmp_path):
        # ENOSPC mid-campaign: the cell event must never become visible
        # (durable-before-visible), the campaign must end in a terminal
        # error, and the runner must be told to stop.
        hub, obs = _durable_hub(tmp_path)
        hub.store.write_manifest("cabc", {"meta": {}})
        cid = hub.create({}, campaign_id="cabc")
        hub.publish(cid, "cell", {"cell": 0})
        hub.store.append_event = lambda *a, **k: False  # disk says no
        with pytest.raises(ServiceError, match="durability lost"):
            hub.publish(cid, "cell", {"cell": 1})
        events, done = hub.events_since(cid)
        assert done is True
        assert [e["kind"] for e in events] == ["cell", "error"]
        assert events[0]["data"]["cell"] == 0  # the lost cell never shown
        assert hub.snapshot(cid)["state"] == "error"
        assert hub.snapshot(cid)["meta"]["durable"] is False
        assert obs.counter_value("stream.durability_degraded") == 1

    def test_failed_terminal_append_stays_visible_but_marked(self, tmp_path):
        hub, obs = _durable_hub(tmp_path)
        hub.store.write_manifest("cabc", {"meta": {}})
        cid = hub.create({}, campaign_id="cabc")
        hub.publish(cid, "cell", {"cell": 0})
        hub.store.append_event = lambda *a, **k: False
        hub.finish(cid, {"failed": 0})  # no raise: clients need closure
        assert hub.snapshot(cid)["state"] == "done"
        assert hub.snapshot(cid)["meta"]["durable"] is False
        assert obs.counter_value("stream.durability_degraded") == 1


class TestCampaignGc:
    @staticmethod
    def _finished(store, campaign_id):
        store.write_manifest(campaign_id, {"meta": {}})
        store.append_event(
            campaign_id, {"seq": 1, "kind": "cell", "data": {"cell": 0}}
        )
        store.append_event(campaign_id, {"seq": 2, "kind": "done", "data": {}})
        store.close(campaign_id)

    def test_gc_collects_only_old_terminal_campaigns(self, tmp_path):
        store = CampaignStore(tmp_path)
        self._finished(store, "cold")
        store.write_manifest("crun", {"meta": {}})
        store.append_event(
            "crun", {"seq": 1, "kind": "cell", "data": {"cell": 0}}
        )
        store.close()
        report = store.gc(retention_s=3600.0, now=time.time() + 7200.0)
        assert report["removed"] == 1
        assert report["kept"] == 1
        assert not store.events_path("cold").exists()
        assert not store.manifest_path("cold").exists()
        assert store.load_manifest("crun") is not None
        # Idempotent: a second pass finds nothing else to do.
        again = store.gc(retention_s=3600.0, now=time.time() + 7200.0)
        assert again["removed"] == 0

    def test_gc_keeps_recent_terminal_campaigns(self, tmp_path):
        store = CampaignStore(tmp_path)
        self._finished(store, "cnew")
        report = store.gc(retention_s=3600.0)
        assert report["removed"] == 0
        assert store.load_manifest("cnew") is not None

    def test_gc_respects_a_live_lease(self, tmp_path):
        owner = CampaignStore(tmp_path)
        self._finished(owner, "cheld")
        assert owner.acquire_lease("cheld")
        sibling = CampaignStore(tmp_path)
        report = sibling.gc(retention_s=0.0, now=time.time() + 10.0)
        assert report["removed"] == 0
        owner.release_lease("cheld")
        report = sibling.gc(retention_s=0.0, now=time.time() + 10.0)
        assert report["removed"] == 1

    def test_reap_garbage_collects_the_disk_copy(self, tmp_path):
        hub, obs = _durable_hub(tmp_path)
        hub.store.write_manifest("cabc", {"meta": {}})
        cid = hub.create({}, campaign_id="cabc")
        hub.publish(cid, "cell", {"cell": 0})
        hub.finish(cid)
        # Backdate the log past the store's retention window, as a
        # long-lived deployment would see.
        stale = time.time() - (8 * 86_400.0)
        os.utime(hub.store.events_path(cid), (stale, stale))
        hub.reap()
        assert not hub.store.events_path(cid).exists()
        assert not hub.store.manifest_path(cid).exists()
        assert obs.counter_value("cache.gc_campaigns") == 1

    def test_load_persisted_skips_stale_finished_campaigns(self, tmp_path):
        hub, _ = _durable_hub(tmp_path)
        hub.store.write_manifest("cabc", {"meta": {}})
        cid = hub.create({}, campaign_id="cabc")
        hub.publish(cid, "cell", {"cell": 0})
        hub.finish(cid)
        stale = time.time() - 7200.0  # past the 1h in-memory TTL
        os.utime(hub.store.events_path(cid), (stale, stale))

        reborn, obs = _durable_hub(tmp_path)
        # Not replayed into memory at startup (bounded restart cost)...
        assert reborn.load_persisted() == []
        # ...but still transparently readable on demand from disk.
        events, done = reborn.events_since(cid)
        assert done is True
        assert [e["seq"] for e in events] == [1, 2]
        assert obs.counter_value("stream.campaigns_reloaded") == 1


def _durable_hub(tmp_path, **kwargs):
    obs = Registry()
    hub = CampaignHub(obs=obs, store=CampaignStore(tmp_path), **kwargs)
    return hub, obs


class TestDurableHub:
    def test_restart_replays_events_and_state(self, tmp_path):
        hub, _ = _durable_hub(tmp_path)
        hub.store.write_manifest("cabc", {"meta": {"scenario": "x"}})
        cid = hub.create({"scenario": "x"}, campaign_id="cabc")
        hub.publish(cid, "cell", {"cell": 0, "ok": True})
        hub.publish(cid, "cell", {"cell": 1, "ok": True})
        hub.finish(cid, {"failed": 0})

        reborn, obs = _durable_hub(tmp_path)
        assert reborn.load_persisted() == ["cabc"]
        events, done = reborn.events_since("cabc")
        assert done is True
        assert [e["seq"] for e in events] == [1, 2, 3]
        assert events[-1]["kind"] == "done"
        assert reborn.snapshot("cabc")["state"] == "done"
        assert obs.counter_value("stream.campaigns_recovered") == 1

    def test_duplicate_cell_events_are_dropped(self, tmp_path):
        hub, obs = _durable_hub(tmp_path)
        hub.store.write_manifest("cabc", {"meta": {}})
        cid = hub.create({}, campaign_id="cabc")
        first = hub.publish(cid, "cell", {"cell": 0, "ok": True})
        again = hub.publish(cid, "cell", {"cell": 0, "ok": True})
        assert again == first  # original seq, no new event
        events, _ = hub.events_since(cid)
        assert len(events) == 1
        assert obs.counter_value("stream.duplicates_skipped") == 1

    def test_resume_prefill_after_restart_stays_gapless(self, tmp_path):
        # Crash after cell 0; the resumed runner's checkpoint prefill
        # re-fires cell 0 before computing cell 1.  The merged log must
        # be gapless and duplicate-free.
        hub, _ = _durable_hub(tmp_path)
        hub.store.write_manifest("cabc", {"meta": {}})
        cid = hub.create({}, campaign_id="cabc")
        hub.publish(cid, "cell", {"cell": 0, "ok": True})

        reborn, _ = _durable_hub(tmp_path)
        reborn.load_persisted()
        assert reborn.publish(cid, "cell", {"cell": 0, "ok": True}) == 1
        assert reborn.publish(cid, "cell", {"cell": 1, "ok": True}) == 2
        reborn.finish(cid)
        events, _ = reborn.events_since(cid)
        assert [e["seq"] for e in events] == [1, 2, 3]
        assert [e["data"].get("cell") for e in events[:-1]] == [0, 1]

    def test_eviction_with_store_reloads_transparently(self, tmp_path):
        hub, obs = _durable_hub(tmp_path, max_finished=0, finished_ttl_s=None)
        hub.store.write_manifest("cabc", {"meta": {}})
        cid = hub.create({}, campaign_id="cabc")
        hub.publish(cid, "cell", {"cell": 0})
        hub.finish(cid)
        assert hub.reap() == 1
        assert obs.counter_value("stream.evictions") == 1
        # Eviction only forgot the fast copy: reads rebuild from disk.
        events, done = hub.events_since(cid)
        assert done and [e["seq"] for e in events] == [1, 2]
        assert obs.counter_value("stream.campaigns_reloaded") == 1

    def test_eviction_without_store_raises_410_hint(self):
        obs = Registry()
        hub = CampaignHub(obs=obs, max_finished=0, finished_ttl_s=None)
        cid = hub.create(
            {"scenario": "weakly_hard", "fingerprint": "f" * 64}
        )
        hub.finish(cid)
        assert hub.reap() == 1
        with pytest.raises(CampaignEvicted) as excinfo:
            hub.events_since(cid)
        hint = excinfo.value.hint
        assert hint["campaign_id"] == cid
        assert hint["scenario"] == "weakly_hard"
        assert hint["fingerprint"] == "f" * 64
        assert "resume" in hint
        assert hub.evicted_hint(cid) == hint

    def test_duplicate_explicit_id_is_rejected(self, tmp_path):
        hub, _ = _durable_hub(tmp_path)
        hub.create({}, campaign_id="cabc")
        with pytest.raises(ConfigurationError, match="already exists"):
            hub.create({}, campaign_id="cabc")


@pytest.fixture(scope="module")
def durable_run(tmp_path_factory):
    """One campaign taken through submit → done → resubmit → restart.

    All the expensive choreography happens once; the tests below assert
    on the collected artifacts.
    """
    checkpoint = tmp_path_factory.mktemp("durable-ckpt")
    artifacts = {}

    service = ScheduleService(jobs=1, checkpoint_dir=checkpoint)
    with running_server(service) as server:
        client = ServiceClient(server.url, timeout_s=60.0)
        status, first = client.submit_scenario({"pack": "weakly_hard"})
        assert status == 200, first
        artifacts["first"] = first
        artifacts["events"] = list(client.stream(first["campaign_id"]))
        status, again = client.submit_scenario({"pack": "weakly_hard"})
        assert status == 200, again
        artifacts["resubmit"] = again
        artifacts["resumed"] = list(
            client.resume_scenario({"pack": "weakly_hard"}, max_reconnects=1)
        )
    service.close()

    # The crash-restart: a brand-new service over the same directory.
    reborn = ScheduleService(jobs=1, checkpoint_dir=checkpoint)
    artifacts["orphans"] = reborn.resume_campaigns()
    with running_server(reborn) as server:
        client = ServiceClient(server.url, timeout_s=60.0)
        artifacts["replay"] = list(
            client.stream(artifacts["first"]["campaign_id"])
        )
        artifacts["tail"] = list(
            client.stream(artifacts["first"]["campaign_id"], after=1)
        )
        status, after_restart = client.submit_scenario({"pack": "weakly_hard"})
        assert status == 200, after_restart
        artifacts["post_restart_submit"] = after_restart
        artifacts["metrics"] = client.metrics()[1]
    reborn.close()
    return artifacts


class TestDurableHttp:
    def test_campaign_id_is_content_addressed(self, durable_run):
        first = durable_run["first"]
        assert first["campaign_id"] == campaign_key(
            first["fingerprint"], "exact"
        )

    def test_stream_runs_to_done(self, durable_run):
        events = durable_run["events"]
        assert [e["kind"] for e in events] == ["cell", "cell", "done"]
        assert [e["seq"] for e in events] == [1, 2, 3]

    def test_resubmission_is_idempotent(self, durable_run):
        again = durable_run["resubmit"]
        assert again["campaign_id"] == durable_run["first"]["campaign_id"]
        assert again["state"] == "done"
        assert again["events"] == 3

    def test_resume_scenario_replays_the_finished_campaign(self, durable_run):
        resumed = durable_run["resumed"]
        assert [e["seq"] for e in resumed] == [1, 2, 3]
        assert resumed[-1]["kind"] == "done"

    def test_restart_replays_the_full_event_log(self, durable_run):
        assert durable_run["replay"] == durable_run["events"]

    def test_after_cursor_survives_the_restart(self, durable_run):
        assert durable_run["tail"] == durable_run["events"][1:]

    def test_finished_campaign_is_not_an_orphan(self, durable_run):
        assert durable_run["orphans"] == []

    def test_submit_after_restart_returns_the_done_state(self, durable_run):
        payload = durable_run["post_restart_submit"]
        assert payload["campaign_id"] == durable_run["first"]["campaign_id"]
        assert payload["state"] == "done"

    def test_recovery_counter_is_exported(self, durable_run):
        metrics = durable_run["metrics"]["tests"]["obs"]["metrics"]
        values = {row["name"]: row["value"] for row in metrics}
        assert values.get("stream.campaigns_recovered", 0) >= 1


class TestHttpEviction:
    def test_evicted_campaign_answers_410_with_resume_hint(self):
        service = ScheduleService(jobs=1)
        # Store-less retention bound of zero: every finished campaign is
        # evicted at the next reap, which is the only way to see a 410
        # (with a store the hub transparently reloads instead).
        service.campaigns = CampaignHub(
            obs=service.obs, max_finished=0, finished_ttl_s=None
        )
        with running_server(service) as server:
            client = ServiceClient(server.url, timeout_s=60.0)
            status, payload = client.submit_scenario({"pack": "weakly_hard"})
            assert status == 200, payload
            events = list(client.stream(payload["campaign_id"]))
            assert events[-1]["kind"] == "done"
            assert service.campaigns.reap() == 1
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                list(client.stream(payload["campaign_id"]))
            assert excinfo.value.code == 410
            body = json.loads(excinfo.value.read().decode("utf-8"))
            assert body["error_kind"] == "gone"
            hint = body["resume"]
            assert hint["campaign_id"] == payload["campaign_id"]
            assert hint["fingerprint"] == payload["fingerprint"]
        service.close()
