"""Durable campaigns: store, hub replay, idempotent HTTP, 410 + resume.

The tentpole contract of ISSUE 10, bottom-up: the on-disk
:class:`CampaignStore` persists exactly what was published (and only
intact prefixes of it), the hub replays it after a "restart" (a fresh
hub over the same directory), re-submitting an identical scenario is
idempotent, and an evicted campaign answers 410 with everything a
client needs to resume.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import pytest

from repro.errors import ConfigurationError
from repro.obs.registry import Registry
from repro.service.client import ServiceClient
from repro.service.durability import CampaignStore, campaign_key
from repro.service.server import ScheduleService, running_server
from repro.service.stream import CampaignEvicted, CampaignHub


class TestCampaignKey:
    def test_is_deterministic_and_content_addressed(self):
        assert campaign_key("f" * 64) == campaign_key("f" * 64)
        assert campaign_key("f" * 64) != campaign_key("e" * 64)

    def test_execution_mode_changes_the_key(self):
        assert campaign_key("f" * 64, "exact") != campaign_key("f" * 64, "fast")

    def test_shape_is_c_plus_16_hex(self):
        key = campaign_key("f" * 64)
        assert key.startswith("c") and len(key) == 17
        int(key[1:], 16)  # hex or raise


class TestCampaignStore:
    def test_manifest_round_trips(self, tmp_path):
        store = CampaignStore(tmp_path)
        assert store.write_manifest("c1", {"meta": {"scenario": "x"}})
        manifest = store.load_manifest("c1")
        assert manifest["meta"] == {"scenario": "x"}
        assert manifest["campaign_id"] == "c1"
        assert list(store.list_manifests()) == ["c1"]

    def test_missing_manifest_is_none(self, tmp_path):
        assert CampaignStore(tmp_path).load_manifest("c404") is None

    def test_events_append_and_load_in_order(self, tmp_path):
        store = CampaignStore(tmp_path)
        for seq in (1, 2, 3):
            assert store.append_event(
                "c1", {"seq": seq, "kind": "cell", "data": {"cell": seq - 1}}
            )
        store.close()
        events = store.load_events("c1")
        assert [event["seq"] for event in events] == [1, 2, 3]
        assert events[0]["data"] == {"cell": 0}

    def test_torn_suffix_is_ignored_not_replayed(self, tmp_path):
        store = CampaignStore(tmp_path)
        store.append_event("c1", {"seq": 1, "kind": "cell", "data": {}})
        store.append_event("c1", {"seq": 2, "kind": "done", "data": {}})
        store.close()
        with open(store.events_path("c1"), "ab") as handle:
            handle.write(b'{"v": 1, "seq": 3, "kind": "cel')  # torn write
        assert [e["seq"] for e in store.load_events("c1")] == [1, 2]

    def test_corrupt_interior_truncates_to_intact_prefix(self, tmp_path):
        store = CampaignStore(tmp_path)
        for seq in (1, 2, 3):
            store.append_event("c1", {"seq": seq, "kind": "cell", "data": {}})
        store.close()
        path = store.events_path("c1")
        lines = path.read_bytes().splitlines(keepends=True)
        lines[1] = lines[1][:10] + b"X" + lines[1][11:]  # flip a byte
        path.write_bytes(b"".join(lines))
        # Prefix-exact read: everything after the first bad record is
        # suspect (its durability ordering is gone), so only seq 1 loads.
        assert [e["seq"] for e in store.load_events("c1")] == [1]

    def test_scrub_repair_truncates_event_logs(self, tmp_path):
        store = CampaignStore(tmp_path)
        store.write_manifest("c1", {"meta": {}})
        store.append_event("c1", {"seq": 1, "kind": "cell", "data": {}})
        store.close()
        with open(store.events_path("c1"), "ab") as handle:
            handle.write(b"garbage\n")
        obs = Registry()
        report = store.scrub(repair=True, obs=obs)
        assert report["events_corrupt"] == 1
        assert report["logs_truncated"] == 1
        assert obs.counter_value("cache.scrub_events_truncated") == 1
        # The log is now fully intact: a re-scrub finds nothing.
        assert store.scrub()["events_corrupt"] == 0
        assert [e["seq"] for e in store.load_events("c1")] == [1]

    def test_scrub_repair_quarantines_corrupt_manifest(self, tmp_path):
        store = CampaignStore(tmp_path)
        store.write_manifest("c1", {"meta": {}})
        store.manifest_path("c1").write_text("{not json")
        report = store.scrub(repair=True)
        assert report["manifests_corrupt"] == 1
        assert store.load_manifest("c1") is None
        assert store.scrub()["manifests"] == 0


def _durable_hub(tmp_path, **kwargs):
    obs = Registry()
    hub = CampaignHub(obs=obs, store=CampaignStore(tmp_path), **kwargs)
    return hub, obs


class TestDurableHub:
    def test_restart_replays_events_and_state(self, tmp_path):
        hub, _ = _durable_hub(tmp_path)
        hub.store.write_manifest("cabc", {"meta": {"scenario": "x"}})
        cid = hub.create({"scenario": "x"}, campaign_id="cabc")
        hub.publish(cid, "cell", {"cell": 0, "ok": True})
        hub.publish(cid, "cell", {"cell": 1, "ok": True})
        hub.finish(cid, {"failed": 0})

        reborn, obs = _durable_hub(tmp_path)
        assert reborn.load_persisted() == ["cabc"]
        events, done = reborn.events_since("cabc")
        assert done is True
        assert [e["seq"] for e in events] == [1, 2, 3]
        assert events[-1]["kind"] == "done"
        assert reborn.snapshot("cabc")["state"] == "done"
        assert obs.counter_value("stream.campaigns_recovered") == 1

    def test_duplicate_cell_events_are_dropped(self, tmp_path):
        hub, obs = _durable_hub(tmp_path)
        hub.store.write_manifest("cabc", {"meta": {}})
        cid = hub.create({}, campaign_id="cabc")
        first = hub.publish(cid, "cell", {"cell": 0, "ok": True})
        again = hub.publish(cid, "cell", {"cell": 0, "ok": True})
        assert again == first  # original seq, no new event
        events, _ = hub.events_since(cid)
        assert len(events) == 1
        assert obs.counter_value("stream.duplicates_skipped") == 1

    def test_resume_prefill_after_restart_stays_gapless(self, tmp_path):
        # Crash after cell 0; the resumed runner's checkpoint prefill
        # re-fires cell 0 before computing cell 1.  The merged log must
        # be gapless and duplicate-free.
        hub, _ = _durable_hub(tmp_path)
        hub.store.write_manifest("cabc", {"meta": {}})
        cid = hub.create({}, campaign_id="cabc")
        hub.publish(cid, "cell", {"cell": 0, "ok": True})

        reborn, _ = _durable_hub(tmp_path)
        reborn.load_persisted()
        assert reborn.publish(cid, "cell", {"cell": 0, "ok": True}) == 1
        assert reborn.publish(cid, "cell", {"cell": 1, "ok": True}) == 2
        reborn.finish(cid)
        events, _ = reborn.events_since(cid)
        assert [e["seq"] for e in events] == [1, 2, 3]
        assert [e["data"].get("cell") for e in events[:-1]] == [0, 1]

    def test_eviction_with_store_reloads_transparently(self, tmp_path):
        hub, obs = _durable_hub(tmp_path, max_finished=0, finished_ttl_s=None)
        hub.store.write_manifest("cabc", {"meta": {}})
        cid = hub.create({}, campaign_id="cabc")
        hub.publish(cid, "cell", {"cell": 0})
        hub.finish(cid)
        assert hub.reap() == 1
        assert obs.counter_value("stream.evictions") == 1
        # Eviction only forgot the fast copy: reads rebuild from disk.
        events, done = hub.events_since(cid)
        assert done and [e["seq"] for e in events] == [1, 2]
        assert obs.counter_value("stream.campaigns_reloaded") == 1

    def test_eviction_without_store_raises_410_hint(self):
        obs = Registry()
        hub = CampaignHub(obs=obs, max_finished=0, finished_ttl_s=None)
        cid = hub.create(
            {"scenario": "weakly_hard", "fingerprint": "f" * 64}
        )
        hub.finish(cid)
        assert hub.reap() == 1
        with pytest.raises(CampaignEvicted) as excinfo:
            hub.events_since(cid)
        hint = excinfo.value.hint
        assert hint["campaign_id"] == cid
        assert hint["scenario"] == "weakly_hard"
        assert hint["fingerprint"] == "f" * 64
        assert "resume" in hint
        assert hub.evicted_hint(cid) == hint

    def test_duplicate_explicit_id_is_rejected(self, tmp_path):
        hub, _ = _durable_hub(tmp_path)
        hub.create({}, campaign_id="cabc")
        with pytest.raises(ConfigurationError, match="already exists"):
            hub.create({}, campaign_id="cabc")


@pytest.fixture(scope="module")
def durable_run(tmp_path_factory):
    """One campaign taken through submit → done → resubmit → restart.

    All the expensive choreography happens once; the tests below assert
    on the collected artifacts.
    """
    checkpoint = tmp_path_factory.mktemp("durable-ckpt")
    artifacts = {}

    service = ScheduleService(jobs=1, checkpoint_dir=checkpoint)
    with running_server(service) as server:
        client = ServiceClient(server.url, timeout_s=60.0)
        status, first = client.submit_scenario({"pack": "weakly_hard"})
        assert status == 200, first
        artifacts["first"] = first
        artifacts["events"] = list(client.stream(first["campaign_id"]))
        status, again = client.submit_scenario({"pack": "weakly_hard"})
        assert status == 200, again
        artifacts["resubmit"] = again
        artifacts["resumed"] = list(
            client.resume_scenario({"pack": "weakly_hard"}, max_reconnects=1)
        )
    service.close()

    # The crash-restart: a brand-new service over the same directory.
    reborn = ScheduleService(jobs=1, checkpoint_dir=checkpoint)
    artifacts["orphans"] = reborn.resume_campaigns()
    with running_server(reborn) as server:
        client = ServiceClient(server.url, timeout_s=60.0)
        artifacts["replay"] = list(
            client.stream(artifacts["first"]["campaign_id"])
        )
        artifacts["tail"] = list(
            client.stream(artifacts["first"]["campaign_id"], after=1)
        )
        status, after_restart = client.submit_scenario({"pack": "weakly_hard"})
        assert status == 200, after_restart
        artifacts["post_restart_submit"] = after_restart
        artifacts["metrics"] = client.metrics()[1]
    reborn.close()
    return artifacts


class TestDurableHttp:
    def test_campaign_id_is_content_addressed(self, durable_run):
        first = durable_run["first"]
        assert first["campaign_id"] == campaign_key(
            first["fingerprint"], "exact"
        )

    def test_stream_runs_to_done(self, durable_run):
        events = durable_run["events"]
        assert [e["kind"] for e in events] == ["cell", "cell", "done"]
        assert [e["seq"] for e in events] == [1, 2, 3]

    def test_resubmission_is_idempotent(self, durable_run):
        again = durable_run["resubmit"]
        assert again["campaign_id"] == durable_run["first"]["campaign_id"]
        assert again["state"] == "done"
        assert again["events"] == 3

    def test_resume_scenario_replays_the_finished_campaign(self, durable_run):
        resumed = durable_run["resumed"]
        assert [e["seq"] for e in resumed] == [1, 2, 3]
        assert resumed[-1]["kind"] == "done"

    def test_restart_replays_the_full_event_log(self, durable_run):
        assert durable_run["replay"] == durable_run["events"]

    def test_after_cursor_survives_the_restart(self, durable_run):
        assert durable_run["tail"] == durable_run["events"][1:]

    def test_finished_campaign_is_not_an_orphan(self, durable_run):
        assert durable_run["orphans"] == []

    def test_submit_after_restart_returns_the_done_state(self, durable_run):
        payload = durable_run["post_restart_submit"]
        assert payload["campaign_id"] == durable_run["first"]["campaign_id"]
        assert payload["state"] == "done"

    def test_recovery_counter_is_exported(self, durable_run):
        metrics = durable_run["metrics"]["tests"]["obs"]["metrics"]
        values = {row["name"]: row["value"] for row in metrics}
        assert values.get("stream.campaigns_recovered", 0) >= 1


class TestHttpEviction:
    def test_evicted_campaign_answers_410_with_resume_hint(self):
        service = ScheduleService(jobs=1)
        # Store-less retention bound of zero: every finished campaign is
        # evicted at the next reap, which is the only way to see a 410
        # (with a store the hub transparently reloads instead).
        service.campaigns = CampaignHub(
            obs=service.obs, max_finished=0, finished_ttl_s=None
        )
        with running_server(service) as server:
            client = ServiceClient(server.url, timeout_s=60.0)
            status, payload = client.submit_scenario({"pack": "weakly_hard"})
            assert status == 200, payload
            events = list(client.stream(payload["campaign_id"]))
            assert events[-1]["kind"] == "done"
            assert service.campaigns.reap() == 1
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                list(client.stream(payload["campaign_id"]))
            assert excinfo.value.code == 410
            body = json.loads(excinfo.value.read().decode("utf-8"))
            assert body["error_kind"] == "gone"
            hint = body["resume"]
            assert hint["campaign_id"] == payload["campaign_id"]
            assert hint["fingerprint"] == payload["fingerprint"]
        service.close()
