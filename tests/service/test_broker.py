"""Broker semantics: dedupe, admission, batching, timeouts, containment."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.service.broker import (
    AdmissionError,
    Broker,
    BrokerClosed,
    RequestTimeout,
    ServiceGuards,
)
from repro.service.cache import ResultCache
from repro.service.query import parse_query
from repro.service.results import execute_query


def _energy(app: str = "example", duration: float = 400.0, **overrides):
    request = {"kind": "energy", "app": app, "duration": duration, "seed": 1}
    request.update(overrides)
    return parse_query(request)


@pytest.fixture()
def broker():
    instance = Broker(cache=ResultCache(), jobs=1)
    yield instance
    instance.close()


class TestPaths:
    def test_miss_then_hit(self, broker):
        query = _energy()
        first = broker.submit(query)
        assert first.path == "miss"
        payload = first.future.result(timeout=60)
        assert payload["ok"] is True
        second = broker.submit(query)
        assert second.path == "hit"
        assert second.future.result(timeout=1) == payload

    def test_miss_matches_reference_execution(self, broker):
        """The broker answer is bit-identical to the sequential path."""
        query = _energy(record_trace=True)
        assert broker.query(query, timeout=60) == execute_query(query)

    def test_analytic_kinds_answer_inline(self, broker):
        query = parse_query({"kind": "schedulability", "app": "cnc"})
        submission = broker.submit(query)
        assert submission.path == "analytic"
        assert submission.future.done()
        assert broker.submit(query).path == "hit"

    def test_deterministic_refusals_become_cached_error_payloads(self, broker):
        """A YDS guard refusal is an answer, not a crash — and it caches."""
        query = _energy(app="ins", duration=25_000.0, scheduler="yds")
        payload = broker.query(query, timeout=60)
        assert payload["ok"] is False
        assert payload["error"].startswith("AnalysisError")
        assert broker.submit(query).path == "hit"


class TestDedupe:
    def test_concurrent_identical_queries_share_one_future(self):
        guards = ServiceGuards(batch_window_s=0.5)
        with Broker(cache=ResultCache(), guards=guards, jobs=1) as broker:
            query = _energy()
            first = broker.submit(query)
            second = broker.submit(query)
            assert first.path == "miss"
            assert second.path == "dedup"
            assert second.future is first.future
            assert broker.stats.snapshot()["dispatched"] == 1
            assert first.future.result(timeout=60)["ok"] is True

    def test_dedup_bypasses_admission_control(self):
        guards = ServiceGuards(max_pending=1, batch_window_s=0.5)
        with Broker(cache=ResultCache(), guards=guards, jobs=1) as broker:
            query = _energy()
            assert broker.submit(query).path == "miss"
            # The pending table is full, yet an identical request attaches.
            assert broker.submit(query).path == "dedup"


class TestAdmission:
    def test_unique_overflow_is_shed_with_503_semantics(self):
        guards = ServiceGuards(max_pending=1, batch_window_s=0.5)
        with Broker(cache=ResultCache(), guards=guards, jobs=1) as broker:
            first = broker.submit(_energy(seed=1))
            with pytest.raises(AdmissionError, match="max_pending=1"):
                broker.submit(_energy(seed=2))
            assert broker.stats.snapshot()["shed"] == 1
            assert first.future.result(timeout=60)["ok"] is True

    def test_guards_validate_configuration(self):
        with pytest.raises(ConfigurationError):
            ServiceGuards(max_pending=0)
        with pytest.raises(ConfigurationError):
            ServiceGuards(request_timeout_s=0)
        with pytest.raises(ConfigurationError):
            ServiceGuards(batch_window_s=-1e-9)
        with pytest.raises(ConfigurationError):
            ServiceGuards(max_batch=0)


class TestBatching:
    def test_window_coalesces_misses_into_one_campaign(self):
        guards = ServiceGuards(batch_window_s=0.3)
        with Broker(cache=ResultCache(), guards=guards, jobs=1) as broker:
            submissions = [broker.submit(_energy(seed=s)) for s in (1, 2, 3)]
            for submission in submissions:
                assert submission.future.result(timeout=60)["ok"] is True
            counters = broker.stats.snapshot()
            assert counters["batched_cells"] == 3
            assert counters["batches"] < 3, "the window should coalesce"

    def test_zero_window_still_answers(self):
        guards = ServiceGuards(batch_window_s=0.0)
        with Broker(cache=ResultCache(), guards=guards, jobs=1) as broker:
            assert broker.query(_energy(), timeout=60)["ok"] is True


class TestTimeouts:
    def test_expired_wait_raises_but_result_still_caches(self):
        with Broker(cache=ResultCache(), jobs=1) as broker:
            query = _energy(app="cnc", duration=25_000.0)
            submission = broker.submit(query)
            with pytest.raises(RequestTimeout, match="retry"):
                broker.query(query, timeout=1e-4)
            # The abandoned computation completes and lands in the cache…
            submission.future.result(timeout=60)
            # …so the retry is a pure cache hit.
            assert broker.submit(query).path == "hit"
            assert broker.stats.snapshot()["timeouts"] == 1


class TestClose:
    def test_submit_after_close_is_refused(self):
        broker = Broker(cache=ResultCache(), jobs=1)
        broker.close()
        with pytest.raises(BrokerClosed):
            broker.submit(_energy())

    def test_close_is_idempotent(self):
        broker = Broker(cache=ResultCache(), jobs=1)
        broker.close()
        broker.close()
