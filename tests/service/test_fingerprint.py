"""Fingerprint properties: canonical, order- and unit-invariant.

The cache key must identify *what will run* and nothing else: hypothesis
drives task-set generation so that every representation freedom a client
has — task order, µs vs ms vs s, int vs float spellings, registry name
vs inline parameters — maps to one fingerprint, while every change that
could alter the answer maps to a different one.
"""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.service.fingerprint import canonical_payload, fingerprint
from repro.service.query import build_query, parse_query
from repro.workloads.registry import get_workload


@st.composite
def task_dicts(draw):
    """Inline task lists with distinct periods (so RM priorities are
    order-independent) and integer-µs parameters (so unit scaling is
    float-exact)."""
    periods = draw(
        st.lists(
            st.integers(min_value=2, max_value=1_000_000),
            min_size=1,
            max_size=6,
            unique=True,
        )
    )
    tasks = []
    for i, period in enumerate(periods):
        wcet = draw(st.integers(min_value=1, max_value=max(1, period // 2)))
        tasks.append({"name": f"t{i}", "wcet": wcet, "period": period})
    return tasks


def _request(tasks, **overrides):
    request = {"kind": "energy", "tasks": tasks, "duration": 10_000}
    request.update(overrides)
    return request


@given(tasks=task_dicts(), seed=st.integers(0, 2**32))
@settings(max_examples=60, deadline=None)
def test_fingerprint_invariant_under_task_reordering(tasks, seed):
    """Shuffling the task list never changes the fingerprint."""
    shuffled = list(tasks)
    random.Random(seed).shuffle(shuffled)
    original = fingerprint(parse_query(_request(tasks)))
    reordered = fingerprint(parse_query(_request(shuffled)))
    assert original == reordered


@given(tasks=task_dicts())
@settings(max_examples=60, deadline=None)
def test_fingerprint_invariant_under_unit_representation(tasks):
    """µs, ms, and s spellings of the same parameters fingerprint alike.

    Parameters are integer µs, so the ms/s forms (``value / 1000`` would
    be inexact — instead the test scales the *other* way: it treats the
    drawn integers as ms/s values and spells the µs form explicitly).
    """
    in_ms = tasks
    in_us = [
        {"name": t["name"], "wcet": t["wcet"] * 1_000, "period": t["period"] * 1_000}
        for t in tasks
    ]
    in_s = [
        {
            "name": t["name"],
            "wcet": t["wcet"] / 1_000,
            "period": t["period"] / 1_000,
        }
        for t in tasks
    ]
    base = _request(in_us, duration=10_000_000)
    ms_form = _request(in_ms, time_unit="ms", duration=10_000)
    fp_us = fingerprint(parse_query(base))
    fp_ms = fingerprint(parse_query(ms_form))
    assert fp_us == fp_ms
    # value/1000 * 1e6 == value * 1000 exactly only when the division is
    # exact; restrict the seconds form to that subset.
    if all(
        t["wcet"] / 1_000 * 1_000_000 == t["wcet"] * 1_000
        and t["period"] / 1_000 * 1_000_000 == t["period"] * 1_000
        for t in tasks
    ):
        s_form = _request(in_s, time_unit="s", duration=10.0)
        assert fp_us == fingerprint(parse_query(s_form))


@given(tasks=task_dicts())
@settings(max_examples=40, deadline=None)
def test_fingerprint_invariant_under_numeric_spelling(tasks):
    """``2000`` (int) and ``2000.0`` (float) are the same parameter."""
    as_floats = [
        {"name": t["name"], "wcet": float(t["wcet"]), "period": float(t["period"])}
        for t in tasks
    ]
    assert fingerprint(parse_query(_request(tasks))) == fingerprint(
        parse_query(_request(as_floats))
    )


@given(tasks=task_dicts())
@settings(max_examples=40, deadline=None)
def test_fingerprint_changes_with_parameters(tasks):
    """Perturbing one WCET changes the fingerprint."""
    perturbed = [dict(t) for t in tasks]
    perturbed[0]["wcet"] = perturbed[0]["wcet"] + perturbed[0]["period"]
    if perturbed[0]["wcet"] > perturbed[0]["period"]:
        perturbed[0]["period"] = perturbed[0]["wcet"]
        # keep the period set collision-free for RM determinism
        if any(
            t["period"] == perturbed[0]["period"] for t in perturbed[1:]
        ):
            return
    assert fingerprint(parse_query(_request(tasks))) != fingerprint(
        parse_query(_request(perturbed))
    )


def test_registry_name_and_inline_tasks_fingerprint_identically():
    """Content addressing: an inline copy of INS equals ``app: ins``."""
    named = parse_query(
        {"kind": "energy", "app": "ins", "duration": 50_000, "bcet_ratio": 0.5}
    )
    inline_tasks = [
        {
            "name": t.name,
            "wcet": t.wcet,
            "period": t.period,
            "deadline": t.deadline,
            "phase": t.phase,
        }
        for t in get_workload("ins").taskset
    ]
    inline = parse_query(
        {
            "kind": "energy",
            "tasks": inline_tasks,
            "duration": 50_000,
            "bcet_ratio": 0.5,
        }
    )
    assert fingerprint(named) == fingerprint(inline)


def test_analytic_kinds_canonicalise_simulation_knobs_away():
    """Scheduler/seed/horizon cannot change an RTA answer, so
    schedulability queries differing only there share one cache line."""
    base = {"kind": "schedulability", "app": "cnc"}
    a = parse_query({**base, "scheduler": "lpfps", "seed": 1})
    b = parse_query({**base, "scheduler": "fps", "seed": 99, "duration": 123.0})
    assert fingerprint(a) == fingerprint(b)


def test_energy_knobs_are_significant():
    """For simulation-backed queries, scheduler/seed/horizon all matter."""
    base = {"kind": "energy", "app": "cnc", "duration": 9_600}
    reference = fingerprint(parse_query(base))
    assert fingerprint(parse_query({**base, "scheduler": "fps"})) != reference
    assert fingerprint(parse_query({**base, "seed": 2})) != reference
    assert fingerprint(parse_query({**base, "duration": 19_200})) != reference
    assert fingerprint(parse_query({**base, "execution": "wcet"})) != reference
    assert fingerprint(parse_query({**base, "record_trace": True})) != reference


def test_canonical_payload_is_stable_and_sorted():
    """The payload lists tasks by name and renders floats via repr."""
    query = build_query("energy", get_workload("cnc").prioritized(), duration=9_600)
    payload = canonical_payload(query)
    names = [t["name"] for t in payload["tasks"]]
    assert names == sorted(names)
    assert payload["duration"] == "9600.0"
    assert fingerprint(query) == fingerprint(query)
