"""Result-cache tiers: LRU behaviour, disk persistence, degradation."""

from __future__ import annotations

import json

from repro.obs.registry import Registry
from repro.service.cache import ResultCache

PAYLOAD = {"ok": True, "kind": "energy", "average_power": 0.5}


def _key(i: int) -> str:
    return f"{i:02x}" + "ab" * 31


class TestMemoryTier:
    def test_round_trip(self):
        cache = ResultCache(memory_items=4)
        cache.put(_key(1), PAYLOAD)
        payload, tier = cache.get_with_tier(_key(1))
        assert payload == PAYLOAD
        assert tier == "memory"
        assert cache.hits_memory == 1

    def test_miss(self):
        cache = ResultCache(memory_items=4)
        assert cache.get(_key(1)) is None
        assert cache.misses == 1

    def test_lru_evicts_least_recently_used(self):
        cache = ResultCache(memory_items=2)
        cache.put(_key(1), {"v": 1})
        cache.put(_key(2), {"v": 2})
        assert cache.get(_key(1)) == {"v": 1}  # touch 1: now 2 is LRU
        cache.put(_key(3), {"v": 3})
        assert cache.get(_key(2)) is None
        assert cache.get(_key(1)) == {"v": 1}
        assert cache.get(_key(3)) == {"v": 3}
        assert cache.evictions == 1

    def test_zero_capacity_memory_tier_is_passthrough(self):
        cache = ResultCache(memory_items=0)
        cache.put(_key(1), PAYLOAD)
        assert len(cache) == 0
        assert cache.get(_key(1)) is None


class TestDiskTier:
    def test_persists_across_instances(self, tmp_path):
        first = ResultCache(memory_items=4, disk_dir=tmp_path / "cache")
        first.put(_key(7), PAYLOAD)
        second = ResultCache(memory_items=4, disk_dir=tmp_path / "cache")
        payload, tier = second.get_with_tier(_key(7))
        assert payload == PAYLOAD
        assert tier == "disk"

    def test_disk_hit_promotes_to_memory(self, tmp_path):
        cache = ResultCache(memory_items=4, disk_dir=tmp_path / "cache")
        cache.put(_key(7), PAYLOAD)
        fresh = ResultCache(memory_items=4, disk_dir=tmp_path / "cache")
        assert fresh.get_with_tier(_key(7))[1] == "disk"
        assert fresh.get_with_tier(_key(7))[1] == "memory"

    def test_eviction_does_not_lose_the_answer(self, tmp_path):
        cache = ResultCache(memory_items=1, disk_dir=tmp_path / "cache")
        cache.put(_key(1), {"v": 1})
        cache.put(_key(2), {"v": 2})  # evicts key 1 from memory
        payload, tier = cache.get_with_tier(_key(1))
        assert payload == {"v": 1}
        assert tier == "disk"

    def test_corrupt_entry_degrades_to_miss(self, tmp_path):
        cache = ResultCache(memory_items=0, disk_dir=tmp_path / "cache")
        cache.put(_key(3), PAYLOAD)
        path = next((tmp_path / "cache").rglob("*.json"))
        path.write_text("{torn")
        assert cache.get(_key(3)) is None
        assert not path.exists(), "corrupt entries are removed"

    def test_entries_are_sharded_and_valid_json(self, tmp_path):
        cache = ResultCache(disk_dir=tmp_path / "cache")
        key = _key(0xAB)
        cache.put(key, PAYLOAD)
        path = tmp_path / "cache" / key[:2] / f"{key}.json"
        assert path.exists()
        assert json.loads(path.read_text()) == PAYLOAD

    def test_unwritable_disk_dir_degrades_to_memory_only(self, tmp_path):
        blocker = tmp_path / "blocked"
        blocker.write_text("a file where the cache dir should go")
        cache = ResultCache(memory_items=4, disk_dir=blocker / "sub")
        cache.put(_key(1), PAYLOAD)  # disk write fails silently
        assert cache.get(_key(1)) == PAYLOAD  # memory tier still serves


def test_counters_snapshot():
    cache = ResultCache(memory_items=2)
    cache.put(_key(1), PAYLOAD)
    cache.get(_key(1))
    cache.get(_key(9))
    counters = cache.counters()
    assert counters["cache_puts"] == 1
    assert counters["cache_hits_memory"] == 1
    assert counters["cache_misses"] == 1
    assert counters["cache_memory_entries"] == 1


def test_memory_evictions_reach_obs_registry():
    registry = Registry()
    cache = ResultCache(memory_items=2, obs=registry)
    cache.put(_key(1), {"v": 1})
    cache.put(_key(2), {"v": 2})
    assert registry.counter_value("cache.mem_evictions") == 0
    cache.put(_key(3), {"v": 3})
    assert registry.counter_value("cache.mem_evictions") == 1
    assert cache.counters()["cache_evictions"] == 1


def test_no_registry_means_no_obs_traffic():
    # The default sink is the DISABLED singleton: evictions still count
    # locally but nothing escapes the cache object.
    cache = ResultCache(memory_items=1)
    cache.put(_key(1), {"v": 1})
    cache.put(_key(2), {"v": 2})
    assert cache.evictions == 1
