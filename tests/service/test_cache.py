"""Result-cache tiers: LRU behaviour, disk persistence, degradation."""

from __future__ import annotations

import json

from repro.obs.registry import Registry
from repro.service.cache import ENVELOPE_VERSION, ResultCache, payload_checksum

PAYLOAD = {"ok": True, "kind": "energy", "average_power": 0.5}


def _key(i: int) -> str:
    return f"{i:02x}" + "ab" * 31


class TestMemoryTier:
    def test_round_trip(self):
        cache = ResultCache(memory_items=4)
        cache.put(_key(1), PAYLOAD)
        payload, tier = cache.get_with_tier(_key(1))
        assert payload == PAYLOAD
        assert tier == "memory"
        assert cache.hits_memory == 1

    def test_miss(self):
        cache = ResultCache(memory_items=4)
        assert cache.get(_key(1)) is None
        assert cache.misses == 1

    def test_lru_evicts_least_recently_used(self):
        cache = ResultCache(memory_items=2)
        cache.put(_key(1), {"v": 1})
        cache.put(_key(2), {"v": 2})
        assert cache.get(_key(1)) == {"v": 1}  # touch 1: now 2 is LRU
        cache.put(_key(3), {"v": 3})
        assert cache.get(_key(2)) is None
        assert cache.get(_key(1)) == {"v": 1}
        assert cache.get(_key(3)) == {"v": 3}
        assert cache.evictions == 1

    def test_zero_capacity_memory_tier_is_passthrough(self):
        cache = ResultCache(memory_items=0)
        cache.put(_key(1), PAYLOAD)
        assert len(cache) == 0
        assert cache.get(_key(1)) is None


class TestDiskTier:
    def test_persists_across_instances(self, tmp_path):
        first = ResultCache(memory_items=4, disk_dir=tmp_path / "cache")
        first.put(_key(7), PAYLOAD)
        second = ResultCache(memory_items=4, disk_dir=tmp_path / "cache")
        payload, tier = second.get_with_tier(_key(7))
        assert payload == PAYLOAD
        assert tier == "disk"

    def test_disk_hit_promotes_to_memory(self, tmp_path):
        cache = ResultCache(memory_items=4, disk_dir=tmp_path / "cache")
        cache.put(_key(7), PAYLOAD)
        fresh = ResultCache(memory_items=4, disk_dir=tmp_path / "cache")
        assert fresh.get_with_tier(_key(7))[1] == "disk"
        assert fresh.get_with_tier(_key(7))[1] == "memory"

    def test_eviction_does_not_lose_the_answer(self, tmp_path):
        cache = ResultCache(memory_items=1, disk_dir=tmp_path / "cache")
        cache.put(_key(1), {"v": 1})
        cache.put(_key(2), {"v": 2})  # evicts key 1 from memory
        payload, tier = cache.get_with_tier(_key(1))
        assert payload == {"v": 1}
        assert tier == "disk"

    def test_corrupt_entry_degrades_to_miss(self, tmp_path):
        cache = ResultCache(memory_items=0, disk_dir=tmp_path / "cache")
        cache.put(_key(3), PAYLOAD)
        path = next((tmp_path / "cache").rglob("*.json"))
        path.write_text("{torn")
        assert cache.get(_key(3)) is None
        assert not path.exists(), "corrupt entries are removed"

    def test_entries_are_sharded_checksummed_envelopes(self, tmp_path):
        cache = ResultCache(disk_dir=tmp_path / "cache")
        key = _key(0xAB)
        cache.put(key, PAYLOAD)
        path = tmp_path / "cache" / key[:2] / f"{key}.json"
        assert path.exists()
        document = json.loads(path.read_text())
        assert document["v"] == ENVELOPE_VERSION
        assert document["key"] == key
        assert document["sha"] == payload_checksum(PAYLOAD)
        assert document["payload"] == PAYLOAD

    def test_checksum_mismatch_is_a_miss(self, tmp_path):
        # A syntactically valid envelope whose payload was silently
        # altered on disk: only the checksum can catch this one.
        cache = ResultCache(memory_items=0, disk_dir=tmp_path / "cache")
        key = _key(4)
        cache.put(key, PAYLOAD)
        path = tmp_path / "cache" / key[:2] / f"{key}.json"
        document = json.loads(path.read_text())
        document["payload"]["average_power"] = 99.0
        path.write_text(json.dumps(document))
        assert cache.get(key) is None
        assert not path.exists()

    def test_misfiled_key_is_a_miss(self, tmp_path):
        # An envelope copied to the wrong fingerprint's slot must not
        # serve as that fingerprint's answer.
        cache = ResultCache(memory_items=0, disk_dir=tmp_path / "cache")
        donor, victim = _key(1), _key(2)
        cache.put(donor, PAYLOAD)
        donor_path = tmp_path / "cache" / donor[:2] / f"{donor}.json"
        victim_path = tmp_path / "cache" / victim[:2] / f"{victim}.json"
        victim_path.parent.mkdir(parents=True, exist_ok=True)
        victim_path.write_text(donor_path.read_text())
        assert cache.get(victim) is None

    def test_unwritable_disk_dir_degrades_to_memory_only(self, tmp_path):
        blocker = tmp_path / "blocked"
        blocker.write_text("a file where the cache dir should go")
        cache = ResultCache(memory_items=4, disk_dir=blocker / "sub")
        cache.put(_key(1), PAYLOAD)  # disk write fails silently
        assert cache.get(_key(1)) == PAYLOAD  # memory tier still serves


def test_counters_snapshot():
    cache = ResultCache(memory_items=2)
    cache.put(_key(1), PAYLOAD)
    cache.get(_key(1))
    cache.get(_key(9))
    counters = cache.counters()
    assert counters["cache_puts"] == 1
    assert counters["cache_hits_memory"] == 1
    assert counters["cache_misses"] == 1
    assert counters["cache_memory_entries"] == 1


def test_memory_evictions_reach_obs_registry():
    registry = Registry()
    cache = ResultCache(memory_items=2, obs=registry)
    cache.put(_key(1), {"v": 1})
    cache.put(_key(2), {"v": 2})
    assert registry.counter_value("cache.mem_evictions") == 0
    cache.put(_key(3), {"v": 3})
    assert registry.counter_value("cache.mem_evictions") == 1
    assert cache.counters()["cache_evictions"] == 1


def test_no_registry_means_no_obs_traffic():
    # The default sink is the DISABLED singleton: evictions still count
    # locally but nothing escapes the cache object.
    cache = ResultCache(memory_items=1)
    cache.put(_key(1), {"v": 1})
    cache.put(_key(2), {"v": 2})
    assert cache.evictions == 1
