"""Fleet failover client + restart budget: deterministic unit coverage.

Everything here runs in-memory and on hand-cranked clocks/RNGs — the
satellite contract from ISSUE 6: retry/failover behaviour must be a
pure function of the injected ``random.Random`` and scripted
transports, never of wall-clock timing.  The subprocess fleet is
exercised separately in ``tests/resilience/test_fleet_chaos.py``.
"""

from __future__ import annotations

import random

import pytest

from repro.errors import ConfigurationError, ServiceError
from repro.obs.registry import Registry, installed
from repro.service.fleet import FleetClient
from repro.service.retry import CircuitBreaker, CircuitOpenError, RetryPolicy
from repro.service.supervisor import RestartBudget


class _FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


class _Replica:
    """An in-memory replica: scripted answers, or dead (raises)."""

    def __init__(self, name, dead=False):
        self.name = name
        self.dead = dead
        self.calls = 0

    def __call__(self, request):
        self.calls += 1
        if self.dead:
            raise ConnectionError(f"{self.name} is dead")
        return 200, {"ok": True, "replica": self.name}


def _fleet(replicas, **kwargs):
    sleeps = []
    transports = {f"http://{r.name}": r for r in replicas}
    client = FleetClient(
        list(transports),
        policy=kwargs.pop("policy", RetryPolicy(max_attempts=4)),
        rng=kwargs.pop("rng", random.Random(1)),
        sleep=sleeps.append,
        transport_factory=transports.__getitem__,
        **kwargs,
    )
    return client, sleeps


class TestRoundRobin:
    def test_requests_spread_over_replicas(self):
        replicas = [_Replica("a"), _Replica("b"), _Replica("c")]
        client, _ = _fleet(replicas)
        answered = [client({})[1]["replica"] for _ in range(6)]
        assert answered == ["a", "b", "c", "a", "b", "c"]
        assert [r.calls for r in replicas] == [2, 2, 2]

    def test_rejects_empty_endpoint_list(self):
        with pytest.raises(ConfigurationError):
            FleetClient([])


class TestFailover:
    def test_dead_replica_fails_over_with_zero_client_failures(self):
        replicas = [_Replica("a", dead=True), _Replica("b")]
        client, sleeps = _fleet(replicas)
        for _ in range(4):
            status, payload = client({})
            assert status == 200
            assert payload["replica"] == "b"
        # Failover is immediate re-issue, never a backoff sleep.
        assert sleeps == []
        assert client.failovers > 0

    def test_dead_replica_is_ejected_by_its_breaker(self):
        replicas = [_Replica("a", dead=True), _Replica("b")]
        client, _ = _fleet(replicas)
        for _ in range(10):
            assert client({})[0] == 200
        # Breaker default threshold is 3: after ejection the dead
        # replica stops being dialled at all.
        assert replicas[0].calls == 3
        assert client.breaker_states()["http://a"] == "open"

    def test_recovered_replica_rejoins_after_half_open_probe(self):
        clock = _FakeClock()
        replicas = [_Replica("a", dead=True), _Replica("b")]
        client, _ = _fleet(
            replicas,
            breaker_factory=lambda: CircuitBreaker(
                failure_threshold=1, reset_timeout_s=5.0, clock=clock
            ),
        )
        assert client({})[0] == 200      # ejects a
        replicas[0].dead = False          # the supervisor restarted it
        clock.advance(5.0)                # breaker half-opens
        served = {client({})[1]["replica"] for _ in range(4)}
        assert served == {"a", "b"}       # back in the rotation

    def test_all_replicas_dead_raises_last_transport_error(self):
        replicas = [_Replica("a", dead=True), _Replica("b", dead=True)]
        client, _ = _fleet(replicas, policy=RetryPolicy(max_attempts=2))
        with pytest.raises(ConnectionError):
            client({})

    def test_every_breaker_open_raises_circuit_open(self):
        replicas = [_Replica("a", dead=True), _Replica("b", dead=True)]
        breakers = {}

        def factory():
            breaker = CircuitBreaker(failure_threshold=1, reset_timeout_s=60.0)
            breakers[len(breakers)] = breaker
            return breaker

        client, _ = _fleet(
            replicas,
            policy=RetryPolicy(max_attempts=2),
            breaker_factory=factory,
        )
        with pytest.raises(ConnectionError):
            client({})                   # trips both breakers
        with pytest.raises(CircuitOpenError):
            client({})                   # nothing left to dial


class TestFlowControl:
    def test_503_backs_off_then_retries(self):
        class _Shedding:
            def __init__(self):
                self.calls = 0

            def __call__(self, request):
                self.calls += 1
                if self.calls == 1:
                    return 503, {"ok": False, "queue_depth": 9}
                return 200, {"ok": True, "replica": "a"}

        shedding = _Shedding()
        client = FleetClient(
            ["http://a"],
            policy=RetryPolicy(max_attempts=3),
            rng=random.Random(1),
            sleep=lambda d: None,
            transport_factory=lambda url: shedding,
        )
        status, _ = client({})
        assert status == 200
        assert client.shed_seen == 1
        assert client.retries == 1

    def test_exhaustion_returns_last_flow_control_answer(self):
        client, sleeps = _fleet(
            [_Replica("a")], policy=RetryPolicy(max_attempts=3)
        )
        client._targets[0].send = lambda request: (503, {"ok": False})
        status, payload = client({})
        assert status == 503
        assert len(sleeps) == 2  # never sleeps after the final pass

    def test_counters_land_in_installed_registry(self):
        registry = Registry()
        replicas = [_Replica("a", dead=True), _Replica("b")]
        client, _ = _fleet(replicas)
        with installed(registry):
            client({})
        assert registry.counter_value("fleet.attempts") == 2
        assert registry.counter_value("fleet.failovers") == 1


class TestDeterminism:
    """The satellite pin: backoff is a pure function of the seeded RNG."""

    def test_same_seed_same_backoff_schedule(self):
        def run(seed):
            sleeps = []
            shed = lambda request: (503, {"ok": False})  # noqa: E731
            client = FleetClient(
                ["http://a"],
                policy=RetryPolicy(max_attempts=6),
                rng=random.Random(seed),
                sleep=sleeps.append,
                transport_factory=lambda url: shed,
            )
            client({})
            return sleeps

        assert run(7) == run(7)
        assert run(7) != run(8)


class TestRestartBudget:
    def test_backoff_doubles_up_to_cap(self):
        clock = _FakeClock()
        budget = RestartBudget(
            base_s=1.0, cap_s=8.0, max_restarts=10, window_s=1000.0, clock=clock
        )
        delays = [budget.next_restart() for _ in range(5)]
        assert delays == [1.0, 2.0, 4.0, 8.0, 8.0]

    def test_recovery_resets_the_backoff_streak(self):
        clock = _FakeClock()
        budget = RestartBudget(
            base_s=1.0, cap_s=8.0, max_restarts=10, window_s=1000.0, clock=clock
        )
        assert budget.next_restart() == 1.0
        assert budget.next_restart() == 2.0
        budget.record_recovery()
        assert budget.next_restart() == 1.0

    def test_budget_exhaustion_quarantines(self):
        clock = _FakeClock()
        budget = RestartBudget(
            base_s=0.1, cap_s=0.1, max_restarts=3, window_s=60.0, clock=clock
        )
        assert budget.next_restart() is not None
        assert budget.next_restart() is not None
        assert budget.next_restart() is not None
        assert budget.next_restart() is None  # the circuit: stop thrashing

    def test_window_expiry_restores_budget(self):
        clock = _FakeClock()
        budget = RestartBudget(
            base_s=0.1, cap_s=0.1, max_restarts=2, window_s=60.0, clock=clock
        )
        budget.next_restart()
        budget.next_restart()
        assert budget.next_restart() is None
        clock.advance(61.0)
        assert budget.next_restart() is not None

    def test_recovery_does_not_reset_the_window(self):
        # A crash-looper with brief healthy periods still quarantines.
        clock = _FakeClock()
        budget = RestartBudget(
            base_s=0.1, cap_s=0.1, max_restarts=2, window_s=60.0, clock=clock
        )
        budget.next_restart()
        budget.record_recovery()
        budget.next_restart()
        budget.record_recovery()
        assert budget.next_restart() is None

    def test_bad_knobs_rejected(self):
        with pytest.raises(ConfigurationError):
            RestartBudget(base_s=0.0)
        with pytest.raises(ConfigurationError):
            RestartBudget(base_s=1.0, cap_s=0.5)
        with pytest.raises(ConfigurationError):
            RestartBudget(max_restarts=0)
        with pytest.raises(ConfigurationError):
            RestartBudget(window_s=0.0)


class _ScriptedScenarioClient:
    """A fake scenario client: scripted submit answer + event stream."""

    def __init__(self, name, events, submit=(200, None), die_after=None):
        self.name = name
        self.events = events
        self.submit_answer = submit
        self.die_after = die_after  # yield this many, then drop the stream
        self.submits = 0
        self.streams = 0

    def submit_scenario(self, request):
        self.submits += 1
        status, payload = self.submit_answer
        if payload is None:
            payload = {"ok": True, "campaign_id": "cabc"}
        return status, payload

    def stream(self, campaign_id, after=0):
        self.streams += 1
        yielded = 0
        for event in self.events:
            if event["seq"] <= after:
                continue
            if self.die_after is not None and yielded >= self.die_after:
                raise ConnectionError(f"{self.name} died mid-stream")
            yielded += 1
            yield event


def _events(*seqs, terminal="done"):
    out = [{"seq": s, "kind": "cell", "data": {"cell": s - 1}} for s in seqs]
    out.append({"seq": seqs[-1] + 1 if seqs else 1, "kind": terminal, "data": {}})
    return out


def _scenario_fleet(clients, **kwargs):
    by_url = {f"http://{c.name}": c for c in clients}
    sleeps = []
    fleet = FleetClient(
        list(by_url),
        scenario_client_factory=by_url.__getitem__,
        sleep=sleeps.append,
        **kwargs,
    )
    return fleet, sleeps


class TestFleetResumeScenario:
    def test_replica_death_mid_stream_fails_over_gapless(self):
        full = _events(1, 2, 3)
        a = _ScriptedScenarioClient("a", full, die_after=2)
        b = _ScriptedScenarioClient("b", full)
        registry = Registry()
        fleet, sleeps = _scenario_fleet([a, b], obs=registry)
        events = list(fleet.resume_scenario({"pack": "weakly_hard"}))
        # Gapless and duplicate-free across the failover.
        assert [e["seq"] for e in events] == [1, 2, 3, 4]
        assert events[-1]["kind"] == "done"
        assert a.streams == 1 and b.streams == 1
        # The resumed attachment asked only for the unseen tail.
        assert registry.counter_value("fleet.scenario_failovers") == 1
        assert len(sleeps) == 1

    def test_healthy_replica_streams_in_one_attachment(self):
        a = _ScriptedScenarioClient("a", _events(1, 2))
        fleet, sleeps = _scenario_fleet([a])
        events = list(fleet.resume_scenario({"pack": "weakly_hard"}))
        assert [e["seq"] for e in events] == [1, 2, 3]
        assert sleeps == []

    def test_non_200_submission_raises(self):
        a = _ScriptedScenarioClient(
            "a", [], submit=(400, {"ok": False, "error": "bad scenario"})
        )
        fleet, _ = _scenario_fleet([a])
        with pytest.raises(ServiceError, match="bad scenario"):
            list(fleet.resume_scenario({"pack": "nope"}))

    def test_reconnect_budget_exhaustion_raises(self):
        a = _ScriptedScenarioClient("a", _events(1, 2), die_after=0)
        b = _ScriptedScenarioClient("b", _events(1, 2), die_after=0)
        fleet, _ = _scenario_fleet([a, b])
        with pytest.raises(ServiceError, match="reconnects"):
            list(fleet.resume_scenario({"pack": "weakly_hard"}, max_reconnects=3))

    def test_submit_scenario_fails_over_dead_replica(self):
        class _DeadScenarioClient:
            def submit_scenario(self, request):
                raise ConnectionError("dead")

        alive = _ScriptedScenarioClient("b", [])
        clients = {"http://a": _DeadScenarioClient(), "http://b": alive}
        fleet = FleetClient(
            list(clients), scenario_client_factory=clients.__getitem__
        )
        status, payload = fleet.submit_scenario({"pack": "weakly_hard"})
        assert status == 200 and payload["campaign_id"] == "cabc"
        assert fleet.failovers == 1
