"""Disk-cache integrity scrubber: detection, quarantine, counters.

The acceptance bar: the scrubber detects 100% of chaos-injected torn or
corrupted entries, repair quarantines them so a later reader sees a miss
(never a wrong hit), and intact entries are never touched.
"""

from __future__ import annotations

import json

from repro.faults.chaos import flip_bytes, tear_file
from repro.obs.registry import Registry
from repro.service.cache import (
    QUARANTINE_DIR,
    CacheScrubReport,
    ResultCache,
    scrub_cache,
)


def _key(i: int) -> str:
    return f"{i:02x}" + "cd" * 31


def _path(root, key):
    return root / key[:2] / f"{key}.json"


def _seed(root, count=6):
    cache = ResultCache(memory_items=0, disk_dir=root)
    keys = [_key(i) for i in range(count)]
    for i, key in enumerate(keys):
        cache.put(key, {"ok": True, "kind": "energy", "cell": i})
    return keys


class TestDetection:
    def test_clean_cache_scrubs_clean(self, tmp_path):
        keys = _seed(tmp_path)
        report = scrub_cache(tmp_path)
        assert report.clean
        assert report.scanned == len(keys)
        assert report.intact == len(keys)
        assert report.corrupt == 0

    def test_missing_directory_is_a_clean_noop(self, tmp_path):
        report = scrub_cache(tmp_path / "never-created")
        assert report.clean and report.scanned == 0

    def test_detects_every_chaos_injected_defect(self, tmp_path):
        # One of each failure class the chaos harness can inject, plus
        # hand-made identity defects: detection must be 100%.
        keys = _seed(tmp_path, count=8)
        broken = set()

        tear_file(_path(tmp_path, keys[0]), seed=3)  # torn write
        broken.add(keys[0])
        flip_bytes(_path(tmp_path, keys[1]), count=2, seed=5)  # bit rot
        broken.add(keys[1])
        _path(tmp_path, keys[2]).write_text("")  # unsynced rename corpse
        broken.add(keys[2])
        _path(tmp_path, keys[3]).write_text(json.dumps({"v": 999}))
        broken.add(keys[3])  # wrong envelope version
        # Misfiled: intact envelope under another fingerprint's name.
        donor = _path(tmp_path, keys[4]).read_text()
        _path(tmp_path, keys[5]).write_text(donor)
        broken.add(keys[5])

        report = scrub_cache(tmp_path)
        assert report.scanned == len(keys)
        assert report.corrupt == len(broken)
        flagged = {p["path"] for p in report.problems}
        assert flagged == {str(_path(tmp_path, k)) for k in broken}

    def test_flipped_byte_that_still_parses_is_caught(self, tmp_path):
        # Force the checksum class specifically: mutate the payload
        # inside a re-serialized, perfectly parseable envelope.
        [key] = _seed(tmp_path, count=1)
        document = json.loads(_path(tmp_path, key).read_text())
        document["payload"]["cell"] = 12345
        _path(tmp_path, key).write_text(json.dumps(document))
        report = scrub_cache(tmp_path)
        assert report.corrupt == 1
        assert report.problems[0]["reason"] == "checksum-mismatch"


class TestRepair:
    def test_repair_quarantines_and_reader_misses(self, tmp_path):
        keys = _seed(tmp_path)
        tear_file(_path(tmp_path, keys[0]), seed=1)
        flip_bytes(_path(tmp_path, keys[1]), seed=2)

        report = scrub_cache(tmp_path, repair=True)
        assert report.corrupt == 2 and report.quarantined == 2
        assert not _path(tmp_path, keys[0]).exists()
        assert not _path(tmp_path, keys[1]).exists()
        # Evidence survives in the pen...
        assert len(list((tmp_path / QUARANTINE_DIR).iterdir())) == 2

        # ...and the cache serves misses for the broken keys, intact
        # payloads for the rest — never a wrong hit.
        cache = ResultCache(memory_items=0, disk_dir=tmp_path)
        assert cache.get(keys[0]) is None
        assert cache.get(keys[1]) is None
        for i, key in enumerate(keys[2:], start=2):
            assert cache.get(key) == {"ok": True, "kind": "energy", "cell": i}

    def test_repair_is_idempotent(self, tmp_path):
        keys = _seed(tmp_path)
        tear_file(_path(tmp_path, keys[0]), seed=7)
        first = scrub_cache(tmp_path, repair=True)
        second = scrub_cache(tmp_path, repair=True)
        assert first.quarantined == 1
        assert second.clean and second.quarantined == 0
        assert second.scanned == len(keys) - 1

    def test_quarantine_dir_is_not_rescanned(self, tmp_path):
        keys = _seed(tmp_path)
        flip_bytes(_path(tmp_path, keys[0]), seed=4)
        scrub_cache(tmp_path, repair=True)
        report = scrub_cache(tmp_path)
        assert report.scanned == len(keys) - 1
        assert report.clean

    def test_without_repair_nothing_moves(self, tmp_path):
        keys = _seed(tmp_path)
        tear_file(_path(tmp_path, keys[0]), seed=6)
        report = scrub_cache(tmp_path, repair=False)
        assert report.corrupt == 1 and report.quarantined == 0
        assert _path(tmp_path, keys[0]).exists()


class TestObsAndReport:
    def test_scrub_counters_reach_registry(self, tmp_path):
        keys = _seed(tmp_path)
        tear_file(_path(tmp_path, keys[0]), seed=9)
        registry = Registry()
        scrub_cache(tmp_path, repair=True, obs=registry)
        assert registry.counter_value("cache.scrub_scanned") == len(keys)
        assert registry.counter_value("cache.scrub_intact") == len(keys) - 1
        assert registry.counter_value("cache.scrub_corrupt") == 1
        assert registry.counter_value("cache.scrub_quarantined") == 1

    def test_report_document_and_render(self, tmp_path):
        keys = _seed(tmp_path, count=2)
        tear_file(_path(tmp_path, keys[1]), seed=2)
        report = scrub_cache(tmp_path)
        document = report.to_document()
        assert document["kind"] == "cache-scrub"
        assert document["scanned"] == 2 and document["corrupt"] == 1
        assert isinstance(report, CacheScrubReport)
        text = report.render()
        assert "scanned 2" in text and "1 corrupt" in text
