"""Cache-hit bit-identity against the golden trace fixtures.

The service's core contract is that a cached answer is indistinguishable
from a fresh simulation.  This suite pins it against the strongest
oracle the repo has: for every registry scheduler x golden workload
cell, the service is queried twice — a cache miss (fresh simulation via
the broker) and a cache hit — and both payloads must carry the exact
trace digest stored in ``tests/golden/golden_traces.json``.  Golden
cells that are deterministic refusals (the YDS oracle on INS/CNC) must
come back as the pinned ``TypeName: message`` error payload, cached the
same way.

Marked ``golden`` like the trace suite: slow, run in its own CI job.
"""

from __future__ import annotations

import json

import pytest

from repro.schedulers.registry import available_schedulers
from repro.service.query import parse_query
from repro.service.server import ScheduleService

from ..golden.capture import (
    FIXTURE_PATH,
    GOLDEN_BCET_RATIO,
    GOLDEN_SEED,
    GOLDEN_WORKLOADS,
    case_id,
)

pytestmark = pytest.mark.golden


@pytest.fixture(scope="module")
def fixtures():
    return json.loads(FIXTURE_PATH.read_text())


@pytest.fixture(scope="module")
def service(tmp_path_factory):
    instance = ScheduleService(
        cache_dir=tmp_path_factory.mktemp("service-cache"), jobs=1
    )
    yield instance
    instance.close()


def _golden_request(scheduler: str, workload: str, duration: float) -> dict:
    return {
        "kind": "energy",
        "app": workload,
        "scheduler": scheduler,
        "duration": duration,
        "seed": GOLDEN_SEED,
        "bcet_ratio": GOLDEN_BCET_RATIO,
        "execution": "gaussian",
        "record_trace": True,
    }


@pytest.mark.parametrize("scheduler", available_schedulers())
@pytest.mark.parametrize(
    "workload,duration", GOLDEN_WORKLOADS, ids=[w for w, _ in GOLDEN_WORKLOADS]
)
def test_cache_hit_equals_fresh_golden_digest(
    service, fixtures, scheduler, workload, duration
):
    query = parse_query(_golden_request(scheduler, workload, duration))
    golden = fixtures[case_id(scheduler, workload)]

    miss = service.query(query, timeout=300)
    hit = service.query(query, timeout=300)

    assert hit == miss, "a cache hit must be bit-identical to the fresh run"
    if "error" in golden:
        assert miss["ok"] is False
        assert miss["error"] == golden["error"]
    else:
        assert miss["ok"] is True
        assert miss["digest"] == golden


def test_disk_tier_round_trip_preserves_bit_identity(service, fixtures, tmp_path):
    """A payload reloaded from a *fresh* process's disk tier still
    matches the golden digest — JSON round-tripping loses nothing."""
    scheduler, (workload, duration) = "lpfps", GOLDEN_WORKLOADS[0]
    query = parse_query(_golden_request(scheduler, workload, duration))

    first = ScheduleService(cache_dir=tmp_path / "cache", jobs=1)
    try:
        fresh = first.query(query, timeout=300)
    finally:
        first.close()

    second = ScheduleService(cache_dir=tmp_path / "cache", jobs=1)
    try:
        reloaded = second.query(query, timeout=300)
        assert second.cache.hits_disk == 1, "must come from the disk tier"
    finally:
        second.close()

    assert reloaded == fresh
    assert reloaded["digest"] == fixtures[case_id(scheduler, workload)]
