"""Campaign streaming: hub semantics, SSE round-trip, live HTTP delivery."""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.errors import ConfigurationError
from repro.obs.registry import Registry
from repro.service.client import ServiceClient
from repro.service.server import ScheduleService, running_server
from repro.service.stream import (
    MAX_FINISHED,
    TERMINAL_KINDS,
    CampaignHub,
    parse_sse,
    sse_render,
)


class TestHub:
    def test_ids_are_sequential(self):
        hub = CampaignHub()
        assert hub.create({}) == "c1"
        assert hub.create({}) == "c2"

    def test_publish_sequences_from_one(self):
        hub = CampaignHub()
        cid = hub.create({"scenario": "x"})
        assert hub.publish(cid, "cell", {"cell": 0}) == 1
        assert hub.publish(cid, "cell", {"cell": 1}) == 2
        events, done = hub.events_since(cid)
        assert [e["seq"] for e in events] == [1, 2]
        assert not done

    def test_terminal_event_closes_the_campaign(self):
        hub = CampaignHub()
        cid = hub.create({})
        hub.finish(cid, {"cells": 0})
        assert hub.snapshot(cid)["state"] == "done"
        with pytest.raises(ConfigurationError, match="already done"):
            hub.publish(cid, "cell", {})

    def test_fail_marks_error_state(self):
        hub = CampaignHub()
        cid = hub.create({})
        hub.fail(cid, "boom")
        snapshot = hub.snapshot(cid)
        assert snapshot["state"] == "error"
        events, done = hub.events_since(cid)
        assert done and events[-1]["data"] == {"error": "boom"}

    def test_events_since_resumes_mid_stream(self):
        hub = CampaignHub()
        cid = hub.create({})
        for i in range(3):
            hub.publish(cid, "cell", {"cell": i})
        events, _ = hub.events_since(cid, after=2)
        assert [e["seq"] for e in events] == [3]

    def test_unknown_campaign_raises_key_error(self):
        hub = CampaignHub()
        with pytest.raises(KeyError):
            hub.snapshot("c99")
        with pytest.raises(KeyError):
            hub.publish("c99", "cell", {})

    def test_subscribe_replays_then_tails(self):
        hub = CampaignHub()
        cid = hub.create({})
        hub.publish(cid, "cell", {"cell": 0})
        received = []
        done = threading.Event()

        def follow():
            for event in hub.subscribe(cid, poll_s=0.01):
                received.append(event)
            done.set()

        thread = threading.Thread(target=follow, daemon=True)
        thread.start()
        hub.publish(cid, "cell", {"cell": 1})
        hub.finish(cid, {"ok": True})
        assert done.wait(timeout=5.0)
        assert [e["seq"] for e in received] == [1, 2, 3]
        assert received[-1]["kind"] == "done"

    def test_subscribe_idle_timeout_releases_the_subscriber(self):
        hub = CampaignHub()
        cid = hub.create({})
        events = list(hub.subscribe(cid, poll_s=0.01, idle_timeout_s=0.05))
        assert events == []  # gave up, campaign still running

    def test_finished_campaigns_are_evicted_in_order(self):
        hub = CampaignHub()
        ids = []
        for _ in range(MAX_FINISHED + 5):
            cid = hub.create({})
            hub.finish(cid)
            ids.append(cid)
        known = {entry["campaign_id"] for entry in hub.list()}
        # the oldest finished campaigns fell off; the newest survive
        assert ids[-1] in known
        assert len(known) <= MAX_FINISHED + 1

    def test_counters_land_in_the_registry(self):
        registry = Registry()
        hub = CampaignHub(obs=registry)
        cid = hub.create({})
        hub.finish(cid)
        snapshot = registry.snapshot()
        counters = snapshot["counters"]
        assert counters["stream.campaigns"] == 1
        assert counters["stream.events"] == 1


class TestSse:
    def test_render_parse_round_trip(self):
        events = [
            {"seq": 1, "kind": "cell", "data": {"cell": 0, "ok": True}},
            {"seq": 2, "kind": "done", "data": {"cells": 1}},
        ]
        payload = b"".join(sse_render(e) for e in events).decode("utf-8")
        parsed = list(parse_sse(iter(payload.splitlines(keepends=True))))
        assert parsed == events

    def test_parse_skips_comments_and_keepalives(self):
        lines = iter([": keep-alive\n", "id: 7\n", "event: cell\n",
                      'data: {"x": 1}\n', "\n"])
        assert list(parse_sse(lines)) == [
            {"seq": 7, "kind": "cell", "data": {"x": 1}}
        ]

    def test_terminal_kinds_are_stable(self):
        assert TERMINAL_KINDS == ("done", "error")


@pytest.fixture(scope="module")
def service_url():
    service = ScheduleService(jobs=1)
    with running_server(service) as server:
        yield server.url
    service.close()


@pytest.fixture(scope="module")
def client(service_url):
    return ServiceClient(service_url, timeout_s=60.0)


@pytest.fixture(scope="module")
def campaign(client):
    """One weakly_hard campaign submitted once and streamed to completion."""
    status, payload = client.submit_scenario({"pack": "weakly_hard"})
    assert status == 200, payload
    events = list(client.stream(payload["campaign_id"]))
    return payload, events


class TestHttpStreaming:
    def test_submission_answers_with_the_stream_path(self, campaign):
        payload, _ = campaign
        assert payload["ok"] is True
        assert payload["scenario"] == "weakly_hard"
        assert payload["cells"] == 2
        assert payload["stream"] == f"/v1/stream/{payload['campaign_id']}"
        assert len(payload["fingerprint"]) == 64

    def test_stream_delivers_every_cell_then_done(self, campaign):
        _, events = campaign
        kinds = [event["kind"] for event in events]
        assert kinds == ["cell", "cell", "done"]
        assert [event["seq"] for event in events] == [1, 2, 3]
        cells = {event["data"]["scheduler"]: event["data"] for event in events[:-1]}
        assert cells["fps"]["weakly_hard_ok"] is False
        assert cells["jcl"]["weakly_hard_ok"] is True

    def test_done_summary_carries_the_verdicts(self, campaign):
        _, events = campaign
        summary = events[-1]["data"]
        assert summary["scenario"] == "weakly_hard"
        assert summary["failed"] == 0
        assert summary["weakly_hard"] == {"fps": False, "jcl": True}

    def test_after_resumes_mid_stream(self, campaign, client):
        payload, events = campaign
        tail = list(client.stream(payload["campaign_id"], after=2))
        assert [event["seq"] for event in tail] == [3]
        assert tail[0]["data"] == events[-1]["data"]

    def test_scenarios_listing(self, client):
        status, payload = client._get("/v1/scenarios")
        assert status == 200
        assert "weakly_hard" in payload["scenarios"]

    def test_unknown_campaign_is_404(self, client):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            list(client.stream("c404"))
        assert excinfo.value.code == 404

    def test_bad_after_is_400(self, client, campaign):
        payload, _ = campaign
        url = f"{client.url}/v1/stream/{payload['campaign_id']}?after=x"
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(url, timeout=10.0)
        assert excinfo.value.code == 400

    def test_invalid_inline_scenario_names_the_field(self, client):
        status, payload = client.submit_scenario(
            {
                "scenario": {
                    "schema": "repro/scenario/v1",
                    "name": "bad",
                    "tasks": [{"name": "a", "wcet": 1.0, "period": 4.0, "wat": 1}],
                }
            }
        )
        assert status == 400
        assert "tasks[0].wat: unknown key" in payload["error"]

    def test_pack_and_inline_are_exclusive(self, client):
        status, payload = client.submit_scenario(
            {"pack": "cnc", "scenario": {"schema": "repro/scenario/v1"}}
        )
        assert status == 400
        assert payload["ok"] is False

    def test_metrics_schema_unchanged(self, client):
        status, payload = client.metrics()
        assert status == 200
        assert payload["schema"] == "bench-metrics/v1"
