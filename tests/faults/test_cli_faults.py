"""CLI wiring for the ``lpfps faults`` subcommand."""

import pytest

from repro.cli import build_parser, main
from repro.faults.campaign import DEFAULT_POLICIES

pytestmark = pytest.mark.faults


def test_parser_accepts_the_documented_invocation():
    args = build_parser().parse_args(
        ["faults", "--workload", "ins", "--injector", "wcet-overrun",
         "--intensity", "0.2", "--seed", "7"]
    )
    assert args.command == "faults"
    assert args.workload == "ins"
    assert args.injector == "wcet-overrun"
    assert args.intensity == 0.2
    assert args.seed == [7]
    assert args.miss_policy == "run-to-completion"
    assert tuple(args.policies) == DEFAULT_POLICIES


def test_parser_rejects_unknown_injector():
    with pytest.raises(SystemExit):
        build_parser().parse_args(
            ["faults", "--workload", "ins", "--injector", "cosmic-ray"]
        )


def test_main_runs_a_small_campaign(capsys):
    code = main(
        ["faults", "--workload", "example", "--injector", "wcet-overrun",
         "--intensity", "0.3", "--seed", "7", "--policies", "fps", "lpfps"]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "Fault campaign" in out
    assert "lpfps" in out
