"""Structured DeadlineMissError: fields, formatting, pickling."""

import pickle

import pytest

from repro.errors import DeadlineMissError, SchedulingError
from repro.tasks.job import Job
from repro.tasks.task import Task

pytestmark = pytest.mark.faults


def _job():
    task = Task(name="tau1", wcet=10.0, period=50.0)
    return Job(task=task, index=2, release_time=100.0, execution_time=10.0)


class TestStructuredFields:
    def test_fields_and_derived_margin(self):
        job = _job()
        err = DeadlineMissError(job=job, completion=155.0)
        assert err.job is job
        assert err.deadline == 150.0          # pulled from the job
        assert err.completion == 155.0
        assert err.miss_margin == pytest.approx(5.0)

    def test_message_formatting(self):
        err = DeadlineMissError(job=_job(), completion=155.0)
        text = str(err)
        assert "tau1#2" in text
        assert "150.000" in text
        assert "5.000us late" in text

    def test_still_running_formatting(self):
        err = DeadlineMissError(job=_job())
        assert "still running" in str(err)
        assert err.completion is None and err.miss_margin is None

    def test_plain_message_still_works(self):
        err = DeadlineMissError("tau9 blew its deadline")
        assert str(err) == "tau9 blew its deadline"
        assert err.job is None

    def test_is_a_scheduling_error(self):
        assert issubclass(DeadlineMissError, SchedulingError)


class TestPickling:
    def test_round_trip_preserves_structure(self):
        err = DeadlineMissError(
            job="tau1#2", deadline=150.0, completion=155.0
        )
        clone = pickle.loads(pickle.dumps(err))
        assert type(clone) is DeadlineMissError
        assert clone.job == "tau1#2"
        assert clone.deadline == 150.0
        assert clone.completion == 155.0
        assert clone.miss_margin == pytest.approx(5.0)
        assert str(clone) == str(err)
