"""Campaign runner: determinism, control cells, containment accounting."""

import pytest

from repro.errors import ConfigurationError
from repro.faults import run_campaign
from repro.workloads.example_dac99 import example_taskset

pytestmark = pytest.mark.faults

_FAST = dict(policies=("fps", "lpfps"), seeds=(1, 2), duration=2_000.0)


def test_repeat_is_bit_identical():
    first = run_campaign(example_taskset(), "wcet-overrun", 0.4, **_FAST)
    second = run_campaign(example_taskset(), "wcet-overrun", 0.4, **_FAST)
    assert first.render() == second.render()
    assert first.outcomes == second.outcomes


def test_zero_intensity_is_a_control():
    campaign = run_campaign(example_taskset(), "wcet-overrun", 0.0, **_FAST)
    for outcome in campaign.outcomes:
        assert outcome.fault_count == 0
        assert outcome.power == outcome.baseline_power
        assert outcome.energy_delta_pct == 0.0


def test_faults_and_energy_delta_reported():
    campaign = run_campaign(example_taskset(), "wcet-overrun", 0.6, **_FAST)
    lpfps = campaign.outcome("lpfps", guarded=False)
    assert lpfps.fault_count > 0
    # Overruns add real work, so the faulted runs burn more energy.
    assert lpfps.energy_delta_pct > 0.0
    # Both guard columns exist for every policy, in a fixed order.
    assert [(o.policy, o.guarded) for o in campaign.outcomes] == [
        ("fps", False), ("fps", True), ("lpfps", False), ("lpfps", True),
    ]


def test_abort_containment_counted():
    campaign = run_campaign(
        example_taskset(), "wcet-overrun", 1.0, miss_policy="abort", **_FAST
    )
    guarded = campaign.outcome("lpfps", guarded=True)
    if guarded.misses:  # at this dose the example set does miss
        assert guarded.aborts == guarded.misses
    unguarded = campaign.outcome("lpfps", guarded=False)
    assert unguarded.aborts == 0  # unguarded cells run misses to completion


def test_render_mentions_configuration():
    campaign = run_campaign(example_taskset(), "release-jitter", 0.3, **_FAST)
    text = campaign.render()
    assert "release-jitter" in text
    assert "intensity=0.30" in text
    assert "lpfps" in text


def test_invalid_arguments_rejected():
    with pytest.raises(ConfigurationError):
        run_campaign(example_taskset(), "wcet-overrun", -0.5)
    with pytest.raises(ConfigurationError):
        run_campaign(example_taskset(), "wcet-overrun", 0.5, seeds=())
    with pytest.raises(ConfigurationError):
        run_campaign(example_taskset(), "not-a-fault", 0.5)
