"""Unit tests for the fault injectors."""

import random

import pytest

from repro.errors import ConfigurationError
from repro.faults import (
    FaultLayer,
    OverheadSpikeInjector,
    ReleaseJitterInjector,
    ScriptedOverrun,
    SpeedTransitionFaultInjector,
    WakeTimerErrorInjector,
    WcetOverrunInjector,
    available_injectors,
    make_injector,
)
from repro.tasks.task import Task

pytestmark = pytest.mark.faults

TASK = Task(name="tau", wcet=20.0, period=100.0)


class _ExplodingRng(random.Random):
    """RNG that fails the test on any draw (zero-intensity discipline)."""

    def random(self):
        raise AssertionError("injector drew from the RNG at zero intensity")

    def uniform(self, a, b):
        raise AssertionError("injector drew from the RNG at zero intensity")


class TestZeroIntensity:
    """Zero intensity is a strict no-op that never touches the RNG."""

    @pytest.mark.parametrize("name", available_injectors())
    def test_no_rng_draw(self, name):
        injector = make_injector(name, 0.0)
        rng = _ExplodingRng()
        assert not injector.active
        assert injector.perturb_demand(TASK, 20.0, rng) == 20.0
        assert injector.perturb_release(TASK, 100.0, rng) == 100.0
        assert injector.perturb_wake_timer(0.0, 50.0, rng) == 50.0
        assert injector.perturb_speed_request(0.5, 1.0, rng) == 1.0
        assert injector.transition_duration_factor(rng) == 1.0
        assert injector.overhead_spike(rng) == 0.0

    def test_layer_injects_false(self):
        layer = FaultLayer([make_injector(n, 0.0) for n in available_injectors()])
        assert not layer.injects


class TestWcetOverrun:
    def test_full_intensity_always_overruns(self):
        injector = WcetOverrunInjector(1.0)
        rng = random.Random(3)
        for _ in range(20):
            demand = injector.perturb_demand(TASK, 15.0, rng)
            assert demand > TASK.wcet

    def test_magnitude_scales_with_intensity(self):
        rng = random.Random(3)
        demand = WcetOverrunInjector(1.0).perturb_demand(TASK, 15.0, rng)
        # f ~ U(0.25, 1.0) * intensity, applied to the WCET.
        assert TASK.wcet * 1.25 <= demand <= TASK.wcet * 2.0

    def test_targeting_skips_other_tasks_without_rng_draw(self):
        injector = WcetOverrunInjector(1.0, tasks=["other"])
        assert injector.perturb_demand(TASK, 15.0, _ExplodingRng()) == 15.0

    def test_targeting_hits_named_task(self):
        injector = WcetOverrunInjector(1.0, tasks=[TASK.name])
        assert injector.perturb_demand(TASK, 15.0, random.Random(3)) > TASK.wcet


class TestOtherInjectors:
    def test_jitter_delays_never_advances(self):
        injector = ReleaseJitterInjector(1.0)
        rng = random.Random(5)
        for _ in range(20):
            assert injector.perturb_release(TASK, 300.0, rng) >= 300.0

    def test_wake_timer_never_fires_in_the_past(self):
        injector = WakeTimerErrorInjector(1.0)
        rng = random.Random(5)
        for _ in range(50):
            assert injector.perturb_wake_timer(10.0, 11.0, rng) >= 10.0

    def test_speed_fault_drops_and_clamps(self):
        injector = SpeedTransitionFaultInjector(1.0)
        rng = random.Random(5)
        outcomes = {injector.perturb_speed_request(0.5, 1.0, rng) for _ in range(50)}
        assert None in outcomes          # dropped requests
        assert 0.75 in outcomes          # clamped to the midpoint
        factor = injector.transition_duration_factor(rng)
        assert 1.0 <= factor <= 2.0

    def test_overhead_spike_bounded(self):
        injector = OverheadSpikeInjector(1.0)
        rng = random.Random(5)
        spikes = [injector.overhead_spike(rng) for _ in range(50)]
        assert any(s > 0 for s in spikes)
        assert all(0.0 <= s <= 5.0 for s in spikes)


class TestScriptedOverrun:
    def test_hits_exactly_the_named_job(self):
        injector = ScriptedOverrun({"tau#1": 0.5})
        rng = _ExplodingRng()  # deterministic: must never draw
        assert injector.perturb_demand(TASK, 20.0, rng) == 20.0       # tau#0
        assert injector.perturb_demand(TASK, 20.0, rng) == 30.0       # tau#1
        assert injector.perturb_demand(TASK, 20.0, rng) == 20.0       # tau#2

    def test_reset_rewinds_job_counter(self):
        injector = ScriptedOverrun({"tau#0": 1.0})
        rng = _ExplodingRng()
        assert injector.perturb_demand(TASK, 20.0, rng) == 40.0
        injector.reset()
        assert injector.perturb_demand(TASK, 20.0, rng) == 40.0

    def test_rejects_nonpositive_factor(self):
        with pytest.raises(ConfigurationError):
            ScriptedOverrun({"tau#0": 0.0})


class TestRegistry:
    def test_unknown_injector(self):
        with pytest.raises(ConfigurationError):
            make_injector("bitflip", 0.5)

    def test_negative_intensity_rejected(self):
        with pytest.raises(ConfigurationError):
            make_injector("wcet-overrun", -0.1)

    def test_all_names_instantiate(self):
        for name in available_injectors():
            assert make_injector(name, 0.5).name == name
