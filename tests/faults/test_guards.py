"""Guard configuration and guard behaviour in the engine."""

import pytest

from repro.errors import ConfigurationError
from repro.faults import (
    MISS_POLICIES,
    FaultLayer,
    GuardConfig,
    ScriptedOverrun,
    WakeTimerErrorInjector,
)
from repro.schedulers.registry import make_scheduler
from repro.sim.engine import simulate
from repro.tasks.priority import rate_monotonic
from repro.tasks.task import Task, TaskSet
from repro.workloads.example_dac99 import example_taskset

pytestmark = pytest.mark.faults


class TestGuardConfig:
    def test_defaults_inactive(self):
        assert not GuardConfig().any_active
        assert not GuardConfig.none().any_active

    def test_all_activates_everything(self):
        config = GuardConfig.all()
        assert config.overrun_watchdog and config.sleep_guard
        assert config.any_active

    def test_miss_policy_validated(self):
        with pytest.raises(ConfigurationError):
            GuardConfig(miss_policy="panic")
        for policy in MISS_POLICIES:
            assert GuardConfig(miss_policy=policy).miss_policy == policy


class TestOverrunWatchdog:
    """Satellite check: a single overrun on the paper's worked example.

    Table 1 / Example 2: tau2's request at t = 160 is the lone pending job
    and is slowed to r = 0.5 over its private window [160, 200).  We script
    a 50 % overrun on exactly that job (tau2#2) and assert the watchdog
    fires inside the window, snaps the processor back to full speed, and
    that no *other* task pays for tau2's overrun with a deadline miss.
    """

    def _run(self, guarded: bool):
        guards = (
            GuardConfig(overrun_watchdog=True) if guarded else GuardConfig.none()
        )
        layer = FaultLayer([ScriptedOverrun({"tau2#2": 0.5})], guards=guards)
        return simulate(
            example_taskset(),
            make_scheduler("lpfps"),
            duration=400.0,
            on_miss="record",
            record_trace=True,
            faults=layer,
        )

    def test_watchdog_fires_inside_the_slowed_window(self):
        result = self._run(guarded=True)
        watchdog = [a for a in result.guard_activations if a.guard == "watchdog"]
        assert len(watchdog) == 1
        assert 160.0 < watchdog[0].time < 200.0
        assert watchdog[0].job == "tau2#2"

    def test_watchdog_snaps_to_full_speed(self):
        result = self._run(guarded=True)
        snap_time = result.guard_activations[0].time
        # The snap requests a full-speed ramp at the firing instant...
        speed_events = result.trace.events_of_kind("speed")
        assert any(
            abs(e.time - snap_time) < 1e-6 and e.detail == "1.0000"
            for e in speed_events
        )
        # ... and once the up-ramp lands, the overrun tail runs at full speed.
        tail = [
            s
            for s in result.trace.segments
            if s.state == "run" and s.job == "tau2#2" and s.start > snap_time + 1e-6
        ]
        assert tail
        assert all(s.speed_end > s.speed_start - 1e-12 for s in tail)  # rising
        assert tail[-1].speed_start >= 1.0 - 1e-9
        assert tail[-1].speed_end >= 1.0 - 1e-9

    @pytest.mark.parametrize("guarded", [False, True])
    def test_no_other_task_misses(self, guarded):
        result = self._run(guarded=guarded)
        assert [m for m in result.deadline_misses if m.task_name != "tau2"] == []

    def test_fault_event_recorded(self):
        result = self._run(guarded=True)
        assert len(result.fault_events) == 1
        event = result.fault_events[0]
        assert event.detail == "tau2#2"
        assert event.magnitude == pytest.approx(10.0)  # 0.5 * C_2


class TestSleepGuard:
    """A sparse set with a tight deadline: the processor sleeps ~990 of
    every 1000 µs, so wake-timer errors are large in absolute terms and a
    late fire alone blows the 30 µs deadline.  The guard re-arms early
    timers and falls back to the release interrupt for late ones."""

    def _run(self, guarded: bool):
        sparse = rate_monotonic(
            TaskSet(
                name="sparse",
                tasks=[Task("a", wcet=10.0, period=1000.0, deadline=30.0)],
            )
        )
        guards = GuardConfig.all() if guarded else GuardConfig.none()
        layer = FaultLayer([WakeTimerErrorInjector(0.9)], guards=guards, seed=2)
        return simulate(
            sparse,
            make_scheduler("fps-pd"),
            duration=50_000.0,
            on_miss="record",
            faults=layer,
        )

    def test_guard_eliminates_timer_induced_misses(self):
        unguarded = self._run(guarded=False)
        guarded = self._run(guarded=True)
        assert len(unguarded.deadline_misses) > 0
        assert guarded.deadline_misses == []

    def test_both_guard_reactions_exercised(self):
        details = [
            a.detail
            for a in self._run(guarded=True).guard_activations
            if a.guard == "sleep-guard"
        ]
        assert any("re-armed" in d for d in details)
        assert any("release interrupt" in d for d in details)

    def test_inert_without_faults(self):
        layer = FaultLayer([], guards=GuardConfig.all(), seed=2)
        result = simulate(
            example_taskset(),
            make_scheduler("lpfps"),
            duration=4_000.0,
            on_miss="record",
            faults=layer,
        )
        assert result.guard_activations == []
