"""Property: a zero-intensity fault layer is invisible.

For every scheduler in the registry, attaching a fault layer whose
injectors all sit at zero intensity (and whose guards are off) must yield
a trace — segments *and* point events — bit-identical to a run with no
fault layer at all, plus an identical energy breakdown.  This is the
contract that lets the campaign runner use intensity 0 as a true control
cell, and it pins the engine's fast path: the fault hooks must not perturb
floating-point evaluation order when they have nothing to do.
"""

import pytest

from repro.faults import FaultLayer, available_injectors, make_injector
from repro.schedulers.registry import available_schedulers, make_scheduler
from repro.sim.engine import simulate
from repro.tasks.generation import GaussianModel
from repro.workloads.example_dac99 import example_taskset

pytestmark = pytest.mark.faults


def _run(policy, faults):
    return simulate(
        example_taskset(),
        make_scheduler(policy),
        execution_model=GaussianModel(),
        duration=2_000.0,
        seed=9,
        on_miss="record",
        record_trace=True,
        faults=faults,
    )


@pytest.mark.parametrize("policy", available_schedulers())
def test_zero_intensity_is_trace_identical(policy):
    layer = FaultLayer(
        [make_injector(name, 0.0) for name in available_injectors()], seed=9
    )
    bare = _run(policy, faults=None)
    layered = _run(policy, faults=layer)

    assert layered.trace.segments == bare.trace.segments
    assert layered.trace.events == bare.trace.events
    assert layered.energy.as_dict() == bare.energy.as_dict()
    assert layered.fault_events == []
    assert layered.guard_activations == []
