"""Fault-aware trace validation: suppression and abort bookkeeping."""

import pytest

from repro.faults import FaultLayer, GuardConfig
from repro.schedulers.registry import make_scheduler
from repro.sim.engine import simulate
from repro.sim.trace import Segment, TraceRecorder
from repro.sim.validate import validate_trace
from repro.tasks.priority import rate_monotonic
from repro.tasks.task import Task, TaskSet

pytestmark = pytest.mark.faults


def _slowdown_violation_trace(with_fault: bool) -> TraceRecorder:
    """A trace where a#0 runs slowed while b#0 is pending (L16 breach)."""
    trace = TraceRecorder()
    trace.record_event(0.0, "release", "a#0")
    trace.record_event(5.0, "release", "b#0")
    if with_fault:
        # e.g. the full-speed restore at b#0's arrival was dropped.
        trace.record_event(5.0, "fault", "speed-fault:dvs-dropped")
    trace.record_segment(
        Segment(0.0, 20.0, "run", job="a#0", task="a",
                speed_start=0.5, speed_end=0.5)
    )
    trace.record_event(20.0, "completion", "a#0")
    trace.record_segment(
        Segment(20.0, 30.0, "run", job="b#0", task="b")
    )
    trace.record_event(30.0, "completion", "b#0")
    return trace


class TestFaultSuppression:
    def test_violation_without_fault_is_reported(self):
        violations = validate_trace(_slowdown_violation_trace(with_fault=False))
        assert any(v.invariant == "slowdown-exclusive" for v in violations)

    def test_same_violation_with_fault_is_suppressed(self):
        assert validate_trace(_slowdown_violation_trace(with_fault=True)) == []

    def test_fault_aware_false_restores_raw_behaviour(self):
        violations = validate_trace(
            _slowdown_violation_trace(with_fault=True), fault_aware=False
        )
        assert any(v.invariant == "slowdown-exclusive" for v in violations)

    def test_structural_violations_survive_faults(self):
        trace = _slowdown_violation_trace(with_fault=True)
        # A job running before its release is a kernel bug, fault or not.
        trace.record_segment(
            Segment(30.0, 35.0, "run", job="ghost#0", task="ghost")
        )
        violations = validate_trace(trace)
        assert any(v.invariant == "causality" for v in violations)

    def test_violation_before_first_fault_is_kept(self):
        trace = TraceRecorder()
        trace.record_event(0.0, "release", "a#0")
        trace.record_event(0.0, "release", "b#0")
        trace.record_segment(
            Segment(0.0, 10.0, "run", job="a#0", task="a",
                    speed_start=0.5, speed_end=0.5)
        )
        trace.record_event(10.0, "completion", "a#0")
        trace.record_event(50.0, "fault", "wcet-overrun:b#1")  # later fault
        violations = validate_trace(trace)
        assert any(v.invariant == "slowdown-exclusive" for v in violations)


class TestAbortBookkeeping:
    def test_aborted_jobs_stop_being_pending(self):
        """Containment aborts close the pending interval — no fault events
        are involved, so nothing here relies on suppression."""
        overloaded = rate_monotonic(
            TaskSet(
                name="over",
                tasks=[
                    Task("a", wcet=700.0, period=1000.0),
                    Task("b", wcet=700.0, period=1500.0),
                ],
            )
        )
        layer = FaultLayer([], guards=GuardConfig(miss_policy="abort"))
        result = simulate(
            overloaded,
            make_scheduler("fps"),
            duration=50_000.0,
            on_miss="record",
            record_trace=True,
            faults=layer,
        )
        aborts = [m for m in result.deadline_misses if m.containment == "abort"]
        assert aborts and len(aborts) == len(result.deadline_misses)
        assert result.fault_events == []
        assert result.trace.events_of_kind("abort")
        violations = validate_trace(
            result.trace, overloaded, check_slowdown_exclusive=False
        )
        assert violations == []

    def test_completion_after_abort_flagged(self):
        trace = TraceRecorder()
        trace.record_event(0.0, "release", "a#0")
        trace.record_event(10.0, "abort", "a#0")
        trace.record_event(20.0, "completion", "a#0")
        violations = validate_trace(trace)
        assert any(
            v.invariant == "single-completion" and "aborted" in v.detail
            for v in violations
        )
