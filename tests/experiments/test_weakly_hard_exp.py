"""EXP-W: the weakly-hard pack demonstrates the FPS/JCL contrast."""

import pytest

from repro.experiments.weakly_hard import run_weakly_hard


@pytest.fixture(scope="module")
def result():
    return run_weakly_hard()


class TestExpW:
    def test_contrast_demonstrated(self, result):
        verdicts = result.satisfied()
        assert verdicts == {"fps": False, "jcl": True}
        assert result.demonstrates_contrast

    def test_analytic_verdict_agrees(self, result):
        assert result.verdict.schedulable
        assert result.verdict.demand <= 1.0

    def test_render(self, result):
        rendered = result.render()
        assert "EXP-W" in rendered
        assert "VIOLATED" in rendered
        assert "contrast demonstrated" in rendered
        assert result.fingerprint[:12] in rendered
