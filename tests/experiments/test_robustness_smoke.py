"""Smoke tests for the robustness experiment (full sweep runs in benchmarks)."""

import pytest

from repro.experiments.robustness import (
    run_robustness_campaign,
    run_robustness_sweep,
    stress_taskset,
)

pytestmark = pytest.mark.faults


def test_stress_taskset_shape():
    taskset = stress_taskset()
    assert [t.name for t in taskset] == ["heavy", "light"]
    assert taskset.has_priorities
    assert 0.85 < sum(t.wcet / t.period for t in taskset) < 0.90


def test_sweep_guards_win_and_render(tmp_path):
    result = run_robustness_sweep(
        intensities=(0.0, 0.35), seeds=(1,), duration=100_000.0
    )
    point = result.point(0.35)
    assert point.strictly_better
    assert point.guard_activations > 0
    assert result.strict_at_all_nonzero
    base = result.point(0.0)
    assert base.unguarded_misses == 0 and base.guarded_misses == 0
    assert abs(result.fault_free_energy_delta_pct) < 1.0
    text = result.render()
    assert "Guard efficacy" in text and "yes" in text


def test_sweep_is_deterministic():
    kwargs = dict(intensities=(0.0, 0.2), seeds=(1,), duration=50_000.0)
    assert run_robustness_sweep(**kwargs) == run_robustness_sweep(**kwargs)


def test_campaign_wrapper_orders_by_intensity():
    campaigns = run_robustness_campaign(
        application="ins",
        intensities=(0.0, 0.2),
        seeds=(1,),
    )
    assert [c.intensity for c in campaigns] == [0.0, 0.2]
    assert all(c.workload == "ins" for c in campaigns)
