"""Campaign-level fast-path integration: RunSpec.execution + chunking.

The runner is where the fast path meets provenance: every cell must
record which kernel path actually produced it, checkpoint fingerprints
must separate exact from fast campaigns (a resume may never silently mix
paths), and chunked dispatch must change wall time only — never results.
"""

import os

import pytest

from repro.errors import ConfigurationError
from repro.experiments.checkpoint import canonical_spec_payload, spec_fingerprint
from repro.experiments.runner import RunSpec, run_many
from repro.sim import digest_metrics
from repro.tasks.generation import GaussianModel, WcetModel
from repro.workloads.registry import get_workload


def _spec(execution="exact", seed=1, policy="fps", workload="cnc", **kwargs):
    taskset = get_workload(workload).prioritized().with_bcet_ratio(0.5)
    kwargs.setdefault("execution_model", WcetModel())
    kwargs.setdefault("duration", 72_000.0)
    return RunSpec(
        taskset=taskset,
        scheduler=policy,
        seed=seed,
        on_miss="record",
        execution=execution,
        **kwargs,
    )


class TestExecutionField:
    def test_default_is_exact(self):
        assert _spec().execution == "exact"

    def test_invalid_execution_rejected(self):
        with pytest.raises(ConfigurationError, match="execution"):
            _spec(execution="turbo")

    def test_exact_path_is_stamped(self):
        result = _spec("exact").run()
        assert result.metadata["execution_path"] == "exact"

    def test_fast_path_is_stamped(self):
        result = _spec("fast").run()
        assert result.metadata["execution_path"] == "fast-forward"
        assert result.metadata["fastpath"]["cycles_skipped"] >= 1

    def test_fallback_path_is_stamped(self):
        # GaussianModel touches the RNG: ineligible, exact fallback.
        result = _spec("fast", execution_model=GaussianModel()).run()
        assert result.metadata["execution_path"] == "exact-fallback"
        assert "fastpath_fallback" in result.metadata

    def test_run_many_stamps_every_cell(self):
        results = run_many([_spec("exact"), _spec("fast")])
        assert results[0].metadata["execution_path"] == "exact"
        assert results[1].metadata["execution_path"] == "fast-forward"


class TestCheckpointSeparation:
    def test_fingerprints_differ_by_execution(self):
        assert spec_fingerprint(_spec("exact")) != spec_fingerprint(_spec("fast"))

    def test_payload_carries_execution(self):
        payload = canonical_spec_payload(_spec("fast"))
        assert payload["execution"] == "fast"
        assert payload["v"] >= 2

    def test_resume_never_mixes_paths(self, tmp_path):
        # A journal written by a fast campaign must not satisfy the same
        # grid rerun exactly — every cell recomputes on the exact path.
        fast_specs = [_spec("fast", seed=s) for s in (1, 2)]
        exact_specs = [_spec("exact", seed=s) for s in (1, 2)]
        first = run_many(fast_specs, checkpoint=tmp_path)
        assert all(r.metadata["checkpoint"] == "stored" for r in first)
        resumed = run_many(exact_specs, checkpoint=tmp_path)
        assert all(r.metadata.get("checkpoint") != "hit" for r in resumed)
        assert all(r.metadata["execution_path"] == "exact" for r in resumed)
        # Same grid, same path: now the journal applies.
        replay = run_many([_spec("fast", seed=s) for s in (1, 2)], checkpoint=tmp_path)
        assert all(r.metadata["checkpoint"] == "hit" for r in replay)
        assert all(
            r.metadata["execution_path"] == "fast-forward" for r in replay
        )


class TestChunkedDispatch:
    @pytest.fixture(autouse=True)
    def _multicore(self, monkeypatch):
        # run_many clamps to the CPU count; pretend to have cores so the
        # chunked pool engages on any box.
        monkeypatch.setattr(os, "cpu_count", lambda: 4)

    def test_invalid_chunk_rejected(self):
        for bad in (0, -1, 1.5, True):
            with pytest.raises(ConfigurationError, match="chunk"):
                run_many([_spec()], jobs=2, chunk=bad)

    def test_chunked_results_identical_to_serial(self):
        specs = [_spec("fast", seed=s) for s in (1, 2, 3, 4, 5)]
        serial = run_many([_spec("fast", seed=s) for s in (1, 2, 3, 4, 5)])
        chunked = run_many(specs, jobs=2, chunk=2)
        assert chunked[0].metadata["executor"] == "process-pool"
        for a, b in zip(serial, chunked):
            assert digest_metrics(a) == digest_metrics(b)

    def test_chunk_is_stamped(self):
        specs = [_spec(seed=s) for s in (1, 2, 3)]
        results = run_many(specs, jobs=2, chunk=3)
        assert all(r.metadata["chunk"] == 3 for r in results)
        default = run_many([_spec()])
        assert default[0].metadata["chunk"] == 1

    def test_chunk_larger_than_campaign(self):
        specs = [_spec(seed=s) for s in (1, 2)]
        results = run_many(specs, jobs=2, chunk=64)
        assert len(results) == 2
        assert all(r.jobs_completed > 0 for r in results)

    def test_contained_failures_work_chunked(self):
        # fps on an unprioritized taskset raises inside the worker; its
        # chunk-mates must still land as real results.
        bad = RunSpec(
            taskset=get_workload("cnc"),
            scheduler="fps",
            execution_model=WcetModel(),
            duration=7_200.0,
        )
        results = run_many([bad, _spec(seed=2), _spec(seed=3)], jobs=2, chunk=2,
                           failures="contain")
        from repro.experiments.runner import CellFailure

        assert isinstance(results[0], CellFailure)
        assert results[1].jobs_completed > 0
        assert results[2].jobs_completed > 0
