"""Reduced-scale Figure 8 runs asserting the paper's qualitative shape.

Full-scale sweeps live in benchmarks/; these smoke tests use short
horizons, coarse ratio grids, and single seeds to stay fast while still
checking the acceptance criteria of DESIGN.md EXP-F8.
"""

import pytest

from repro.experiments.figure8 import run_figure8

_FAST = dict(ratios=(0.1, 0.5, 1.0), seeds=(1,), duration=500_000.0)


class TestFigure8Shape:
    @pytest.mark.parametrize("app", ["ins", "cnc", "flight_control"])
    def test_lpfps_always_below_fps(self, app):
        result = run_figure8(app, **_FAST)
        for point in result.points:
            assert point.lpfps_power < point.fps_power

    @pytest.mark.parametrize("app", ["ins", "cnc"])
    def test_no_deadline_misses(self, app):
        result = run_figure8(app, **_FAST)
        for point in result.points:
            assert point.lpfps_misses == 0
            assert point.fps_misses == 0

    def test_gain_grows_as_bcet_shrinks(self):
        result = run_figure8("ins", **_FAST)
        reductions = [p.reduction for p in result.points]
        assert reductions[0] > reductions[-1]

    def test_gain_exists_at_wcet(self):
        """LPFPS beats FPS even with zero execution-time variation."""
        result = run_figure8("ins", **_FAST)
        assert result.reduction_at_wcet > 0.05

    def test_fps_power_tracks_utilization_scaling(self):
        """FPS average power rises with the mean execution demand."""
        result = run_figure8("cnc", **_FAST)
        fps_powers = [p.fps_power for p in result.points]
        assert fps_powers == sorted(fps_powers)

    def test_render(self):
        result = run_figure8("cnc", **_FAST)
        text = result.render()
        assert "Figure 8" in text
        assert "reduction" in text
