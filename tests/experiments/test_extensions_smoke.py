"""Reduced-scale runs of the extension experiments (A5-A7)."""

import pytest

from repro.experiments.extensions import (
    run_oracle_gap,
    run_overhead_tradeoff,
    run_predictive_failure,
)


class TestOverheadTradeoff:
    def test_structure(self):
        result = run_overhead_tradeoff(
            application="cnc", overheads=(0.0, 2.0), seeds=(1,)
        )
        assert len(result.points) == 2
        assert "A5" in result.render()

    def test_power_rises_with_overhead(self):
        result = run_overhead_tradeoff(
            application="cnc", overheads=(0.0, 5.0), seeds=(1,)
        )
        assert result.points[1].heuristic_power > result.points[0].heuristic_power
        assert result.points[1].optimal_power > result.points[0].optimal_power

    def test_extra_cost_penalises_optimal(self):
        """At equal base overhead the optimal policy pays its surcharge."""
        cheap = run_overhead_tradeoff(
            application="cnc", overheads=(0.0,), optimal_extra_cost=0.0,
            seeds=(1,),
        )
        costly = run_overhead_tradeoff(
            application="cnc", overheads=(0.0,), optimal_extra_cost=5.0,
            seeds=(1,),
        )
        assert costly.points[0].optimal_power > cheap.points[0].optimal_power


class TestOracleGap:
    def test_ordering_fps_lpfps_yds(self):
        result = run_oracle_gap(application="cnc", ratios=(1.0,), seeds=(1,))
        ratio, fps, lpfps, yds = result.rows[0]
        assert yds < lpfps < fps

    def test_oracle_near_bound_at_wcet(self):
        result = run_oracle_gap(application="cnc", ratios=(1.0,), seeds=(1,))
        _, _, _, yds = result.rows[0]
        # ARM8 overheads (ramps, wakeups, discrete grid) keep the measured
        # oracle near but above the ideal-processor bound.
        assert yds >= result.lower_bound_power - 1e-6
        assert yds <= result.lower_bound_power * 1.35

    def test_oracle_blind_to_variation(self):
        """The static schedule's power barely moves with BCET — the paper's
        core criticism of offline approaches (section 2.2)."""
        result = run_oracle_gap(application="cnc", ratios=(0.2, 1.0), seeds=(1,))
        yds_low = result.rows[0][3]
        yds_wcet = result.rows[1][3]
        fps_low = result.rows[0][1]
        fps_wcet = result.rows[1][1]
        # FPS power swings far more with demand than the oracle's.
        assert (fps_wcet - fps_low) > 2.0 * abs(yds_wcet - yds_low)

    def test_render(self):
        result = run_oracle_gap(application="cnc", ratios=(1.0,), seeds=(1,))
        assert "A6" in result.render()


class TestPredictiveFailure:
    def test_past_misses_lpfps_does_not(self):
        result = run_predictive_failure(application="ins", seed=1)
        assert result.past_misses > 0
        assert result.lpfps_misses == 0
        assert result.past_power < result.fps_power

    def test_render(self):
        result = run_predictive_failure(application="ins", seed=1)
        assert "A7" in result.render()
