"""Experiment harness tests: structure of every reproduced artefact."""

import pytest

from repro.experiments.figure1 import run_figure1
from repro.experiments.figure7 import run_figure7
from repro.experiments.runner import (
    compare_schedulers,
    measurement_duration,
)
from repro.experiments.table1_schedule import run_table1
from repro.experiments.table2 import run_table2
from repro.schedulers.fps import FpsScheduler
from repro.core.lpfps import LpfpsScheduler
from repro.workloads.example_dac99 import example_taskset
from repro.workloads.registry import get_workload


class TestFigure1:
    def test_rows_and_render(self):
        result = run_figure1()
        assert len(result.rows) >= 8
        text = result.render()
        assert "Figure 1" in text
        assert "mean ratio" in text


class TestTable1:
    def test_all_narrative_checkpoints_pass(self):
        result = run_table1()
        failed = [name for name, ok in result.checks if not ok]
        assert not failed, f"unreproduced paper events: {failed}"
        assert result.all_checks_pass

    def test_render_contains_gantt_rows(self):
        text = run_table1().render()
        assert "tau1:" in text and "processor:" in text


class TestTable2:
    def test_matches_paper_columns(self):
        result = run_table2()
        by_name = {r.name: r for r in result.rows}
        assert by_name["Avionics"].tasks == 17
        assert by_name["INS"].wcet_min == 1_180.0
        assert by_name["Flight control"].wcet_max == 60_000.0
        assert by_name["CNC"].wcet_min == 35.0
        assert all(r.schedulable for r in result.rows)

    def test_render(self):
        assert "Table 2" in run_table2().render()


class TestFigure7:
    def test_default_grid_matches_paper(self):
        result = run_figure7()
        assert result.rho == 0.07
        assert result.windows[0] == 50 and result.windows[-1] == 3000
        assert result.ratios == tuple(round(0.1 * k, 1) for k in range(1, 10))

    def test_curves_below_heuristic(self):
        """Theorem 1 visualised: every r_opt curve sits at or below r_heu."""
        result = run_figure7()
        for r_heu, curve in result.r_opt.items():
            assert all(v <= r_heu + 1e-12 for v in curve)

    def test_convergence_with_window(self):
        """'Closely matches except for small t_a - t_c': curves approach
        r_heu as the window grows."""
        result = run_figure7()
        for r_heu, curve in result.r_opt.items():
            assert curve[-1] == pytest.approx(r_heu, abs=0.01)

    def test_degenerate_corner_deviates(self):
        """Low r_heu and small window: r_opt collapses toward 0."""
        result = run_figure7()
        assert result.r_opt[0.1][0] < 0.05

    def test_convergence_window_monotone_hint(self):
        result = run_figure7()
        # Low ratios converge later than high ratios.
        assert result.convergence_window(0.1) >= result.convergence_window(0.9)

    def test_render(self):
        text = run_figure7().render()
        assert "Figure 7" in text and "legend" in text


class TestRunner:
    def test_measurement_duration_bounds(self):
        cnc = get_workload("cnc").prioritized()
        d = measurement_duration(cnc)
        assert d >= 1_000_000.0
        assert d % cnc.hyperperiod == pytest.approx(0.0)

    def test_measurement_duration_caps_large_hyperperiods(self):
        avionics = get_workload("avionics").prioritized()
        assert measurement_duration(avionics) == 10_000_000.0

    def test_compare_schedulers_shared_streams(self):
        points = compare_schedulers(
            example_taskset(),
            {"FPS": FpsScheduler, "LPFPS": LpfpsScheduler},
            seeds=(1,),
            duration=4000.0,
        )
        assert set(points) == {"FPS", "LPFPS"}
        assert points["LPFPS"].average_power < points["FPS"].average_power
        assert points["FPS"].runs == 1
