"""Reduced-scale ablation runs asserting their qualitative conclusions."""

import pytest

from repro.experiments.ablations import (
    run_frequency_grid_ablation,
    run_mechanism_ablation,
    run_policy_ablation,
    run_rho_ablation,
)


class TestPolicyAblation:
    def test_structure_and_safety(self):
        result = run_policy_ablation(application="cnc", seeds=(1,))
        assert result.power_of("FPS") > 0
        heu = result.power_of("LPFPS (heuristic, Eq.3)")
        opt = result.power_of("LPFPS (optimal, Eq.2)")
        assert heu < result.power_of("FPS")
        assert opt < result.power_of("FPS")
        assert "A1" in result.render()


class TestMechanismAblation:
    def test_both_mechanisms_beat_each_alone(self):
        result = run_mechanism_ablation(application="ins", seeds=(1,))
        both = result.power_of("LPFPS (both)")
        assert both < result.power_of("LPFPS power-down only")
        assert both < result.power_of("FPS (busy-wait idle)")

    def test_exact_timer_beats_threshold(self):
        """Section 2.1: the conventional threshold power-down wastes the
        idle prefix."""
        result = run_mechanism_ablation(application="ins", seeds=(1,))
        exact = result.power_of("FPS + exact-timer power-down")
        naive = result.power_of("FPS + threshold power-down")
        assert exact <= naive + 1e-9

    def test_dvs_only_beats_powerdown_only_on_ins(self):
        """Section 3.2: slowing the lone task beats run-fast-then-sleep
        (quadratic voltage dependence)."""
        result = run_mechanism_ablation(application="ins", seeds=(1,))
        dvs = result.power_of("LPFPS DVS only")
        pd = result.power_of("LPFPS power-down only")
        assert dvs < pd


class TestFrequencyGridAblation:
    def test_finer_grids_never_worse(self):
        result = run_frequency_grid_ablation(
            application="ins", seeds=(1,), steps=(None, 1.0, 25.0)
        )
        powers = {row[0]: row[1] for row in result.rows}
        # continuous <= 1 MHz <= 25 MHz (rounding up costs power).
        assert powers["continuous"] <= powers["step=1 MHz, round-up"] + 1e-6
        assert (
            powers["step=1 MHz, round-up"]
            <= powers["step=25 MHz, round-up"] + 1e-6
        )

    def test_dual_level_beats_round_up_on_coarse_grid(self):
        result = run_frequency_grid_ablation(
            application="ins", seeds=(1,), steps=(25.0,)
        )
        powers = {row[0]: row[1] for row in result.rows}
        assert (
            powers["step=25 MHz, dual-level"]
            < powers["step=25 MHz, round-up"]
        )

    def test_no_misses_at_any_granularity(self):
        result = run_frequency_grid_ablation(
            application="ins", seeds=(1,), steps=(1.0, 50.0)
        )
        assert all(row[3] == 0 for row in result.rows)


class TestRhoAblation:
    def test_slower_regulators_cost_power_on_cnc(self):
        result = run_rho_ablation(
            application="cnc", seeds=(1,), rhos=(None, 0.07, 0.007)
        )
        powers = [row[1] for row in result.rows]
        assert powers[0] <= powers[1] + 1e-6
        assert powers[1] <= powers[2] + 1e-6

    def test_render(self):
        result = run_rho_ablation(application="cnc", seeds=(1,), rhos=(None, 0.07))
        assert "A4" in result.render()
