"""Parallel campaign executor: run_many(jobs=N) must equal serial exactly.

Every :class:`~repro.experiments.runner.RunSpec` cell carries its own seed
and builds its own scheduler and fault layer, so fanning the grid out over
worker processes may change wall time but never output.  These tests pin
that equivalence — including the figure8 sweep from the acceptance
criteria — plus the executor's fallback behaviour.
"""

import os

import pytest

from repro.errors import ConfigurationError
from repro.experiments.figure8 import run_figure8
from repro.experiments.runner import RunSpec, resolve_jobs, run_many
from repro.faults.guards import GuardConfig
from repro.faults.injectors import WcetOverrunInjector
from repro.faults.layer import FaultLayer
from repro.schedulers.fps import FpsScheduler
from repro.tasks.generation import GaussianModel
from repro.workloads.registry import get_workload


def _grid_specs():
    """A small (scheduler, workload, seed) grid exercising real policies."""
    specs = []
    for policy in ("fps", "lpfps"):
        for app in ("ins", "cnc"):
            taskset = get_workload(app).prioritized().with_bcet_ratio(0.5)
            for seed in (1, 2):
                specs.append(
                    RunSpec(
                        taskset=taskset,
                        scheduler=policy,
                        seed=seed,
                        execution_model=GaussianModel(),
                        duration=50_000.0,
                        on_miss="record",
                    )
                )
    return specs


def _fingerprint(result):
    """Everything observable about a result, repr-exact for floats."""
    return (
        result.scheduler,
        repr(result.energy.active),
        repr(result.energy.idle),
        repr(result.energy.sleep),
        repr(result.energy.ramp),
        repr(result.energy.wakeup),
        result.jobs_completed,
        result.context_switches,
        result.preemptions,
        result.speed_changes,
        result.sleep_entries,
        len(result.deadline_misses),
        sorted((repr(k), repr(v)) for k, v in result.speed_residency.items()),
    )


class TestSerialParallelEquivalence:
    def test_grid_identical_under_jobs_4(self):
        specs = _grid_specs()
        serial = run_many(specs, jobs=1)
        parallel = run_many(specs, jobs=4)
        assert len(serial) == len(parallel) == len(specs)
        for s, p in zip(serial, parallel):
            assert _fingerprint(s) == _fingerprint(p)

    def test_figure8_sweep_identical_under_jobs_4(self):
        kwargs = dict(ratios=(0.3, 0.8), seeds=(1, 2), duration=200_000.0)
        serial = run_figure8("cnc", **kwargs)
        parallel = run_figure8("cnc", jobs=4, **kwargs)
        assert len(serial.points) == len(parallel.points)
        for s, p in zip(serial.points, parallel.points):
            assert repr(s.fps_power) == repr(p.fps_power)
            assert repr(s.lpfps_power) == repr(p.lpfps_power)
            assert repr(s.reduction) == repr(p.reduction)
            assert s.fps_misses == p.fps_misses
            assert s.lpfps_misses == p.lpfps_misses

    def test_faulted_cells_identical_under_jobs_4(self):
        taskset = get_workload("cnc").prioritized()
        specs = [
            RunSpec(
                taskset=taskset,
                scheduler="lpfps",
                seed=seed,
                duration=48_000.0,
                on_miss="record",
                faults=FaultLayer(
                    injectors=[WcetOverrunInjector(0.3)],
                    guards=GuardConfig.all(),
                    seed=seed,
                ),
            )
            for seed in (1, 2, 3)
        ]
        serial = run_many(specs, jobs=1)
        parallel = run_many(specs, jobs=3)
        for s, p in zip(serial, parallel):
            assert _fingerprint(s) == _fingerprint(p)
            assert len(s.fault_events) == len(p.fault_events)
            assert len(s.guard_activations) == len(p.guard_activations)


class TestExecutorMechanics:
    def test_results_in_spec_order(self):
        specs = _grid_specs()
        results = run_many(specs, jobs=4)
        for spec, result in zip(specs, results):
            assert result.taskset == spec.taskset.name

    def test_factory_scheduler_supported(self):
        taskset = get_workload("cnc").prioritized()
        spec = RunSpec(taskset=taskset, scheduler=FpsScheduler, duration=9_600.0)
        (result,) = run_many([spec], jobs=2)
        assert result.scheduler == "FPS"

    def test_unpicklable_specs_fall_back_to_serial(self):
        taskset = get_workload("cnc").prioritized()
        local = FpsScheduler  # closure makes the factory unpicklable
        spec = RunSpec(
            taskset=taskset, scheduler=lambda: local(), duration=9_600.0
        )
        (result,) = run_many([spec], jobs=2)
        assert result.scheduler == "FPS"

    def test_default_jobs_is_serial(self):
        taskset = get_workload("cnc").prioritized()
        spec = RunSpec(taskset=taskset, scheduler="fps", duration=9_600.0)
        (result,) = run_many([spec])
        assert result.jobs_completed > 0

    def test_jobs_auto_matches_serial_output(self):
        """``jobs=0`` (one worker per CPU) never changes results."""
        specs = _grid_specs()[:4]
        serial = run_many(specs, jobs=1)
        auto = run_many(specs, jobs=0)
        for s, p in zip(serial, auto):
            assert _fingerprint(s) == _fingerprint(p)

    def test_record_trace_round_trips(self):
        taskset = get_workload("cnc").prioritized()
        specs = [
            RunSpec(
                taskset=taskset,
                scheduler="lpfps",
                duration=9_600.0,
                record_trace=True,
            )
            for _ in range(2)
        ]
        for result in run_many(specs, jobs=2):
            assert result.trace is not None
            assert len(result.trace.segments) > 0

    def test_on_miss_raise_propagates(self):
        from repro.errors import DeadlineMissError
        from repro.tasks.priority import rate_monotonic
        from repro.tasks.task import Task, TaskSet

        overloaded = rate_monotonic(
            TaskSet(
                name="overload",
                tasks=[
                    Task("a", wcet=800.0, period=1000.0),
                    Task("b", wcet=800.0, period=1000.0),
                ],
            )
        )
        specs = [
            RunSpec(
                taskset=overloaded,
                scheduler="fps",
                duration=5_000.0,
                on_miss="raise",
            )
        ]
        with pytest.raises(DeadlineMissError):
            run_many(specs, jobs=2)


class TestExecutionMetadata:
    """Every result self-describes how its campaign actually executed."""

    def _one_spec(self):
        taskset = get_workload("cnc").prioritized()
        return RunSpec(taskset=taskset, scheduler="fps", duration=9_600.0)

    def test_metadata_stamped_on_every_result(self):
        results = run_many(_grid_specs()[:3], jobs=1)
        for result in results:
            metadata = result.metadata
            assert metadata["requested_jobs"] == 1
            assert metadata["resolved_jobs"] == 1
            assert metadata["workers"] == 1
            assert metadata["executor"] == "serial"
            assert metadata["cell_wall_s"] > 0.0

    def test_resolved_jobs_clamped_to_cpu_count(self):
        cpus = os.cpu_count() or 1
        results = run_many(_grid_specs()[:2], jobs=cpus + 7)
        for result in results:
            assert result.metadata["requested_jobs"] == cpus + 7
            assert result.metadata["resolved_jobs"] == cpus

    def test_unpicklable_fallback_is_recorded(self):
        if (os.cpu_count() or 1) < 2:
            pytest.skip("needs >1 CPU for the pool path to be attempted")
        taskset = get_workload("cnc").prioritized()
        local = FpsScheduler
        spec1 = RunSpec(
            taskset=taskset, scheduler=lambda: local(), duration=9_600.0
        )
        spec2 = RunSpec(
            taskset=taskset, scheduler=lambda: local(), duration=9_600.0
        )
        results = run_many([spec1, spec2], jobs=2)
        for result in results:
            assert result.metadata["executor"] == "serial-fallback-unpicklable"

    def test_obs_gauges_campaign_execution(self):
        from repro.obs.registry import installed, Registry

        specs = _grid_specs()[:4]
        registry = Registry()
        with installed(registry):
            run_many(specs, jobs=1)
        assert registry.counter_value("runner.campaigns") == 1
        assert registry.counter_value("runner.cells") == len(specs)
        assert registry.counter_value("runner.executor.serial") == 1
        assert registry.gauge_value("runner.resolved_jobs") == 1.0
        assert registry.gauge_value("runner.workers") == 1.0
        assert registry.gauge_value("runner.campaign_wall_s") > 0.0
        # Serial execution spends ~all campaign wall time inside cells.
        assert 0.0 < registry.gauge_value("runner.worker_utilization") <= 1.01
        snap = registry.snapshot()
        assert snap["histograms"]["runner.cell_wall_s"]["count"] == len(specs)

    def test_no_registry_installed_means_no_obs_traffic(self):
        # Metadata still lands; the obs side becomes a no-op.
        (result,) = run_many([self._one_spec()], jobs=1)
        assert result.metadata["executor"] == "serial"


class TestJobsConvention:
    """The shared ``jobs`` convention: ``None``/``0`` mean one per CPU."""

    def test_none_resolves_to_cpu_count(self):
        assert resolve_jobs(None) == (os.cpu_count() or 1)

    def test_zero_resolves_to_cpu_count(self):
        assert resolve_jobs(0) == (os.cpu_count() or 1)

    def test_positive_passes_through(self):
        assert resolve_jobs(1) == 1
        assert resolve_jobs(7) == 7

    def test_negative_is_rejected(self):
        with pytest.raises(ConfigurationError, match="jobs"):
            resolve_jobs(-1)

    def test_non_integer_is_rejected(self):
        with pytest.raises(ConfigurationError, match="jobs"):
            resolve_jobs(2.5)
        with pytest.raises(ConfigurationError, match="jobs"):
            resolve_jobs("4")
        with pytest.raises(ConfigurationError, match="jobs"):
            resolve_jobs(True)  # bools are not worker counts

    def test_run_many_rejects_bad_jobs(self):
        taskset = get_workload("cnc").prioritized()
        spec = RunSpec(taskset=taskset, scheduler="fps", duration=9_600.0)
        with pytest.raises(ConfigurationError):
            run_many([spec], jobs=-2)
