"""Tests for small result-object helpers across the experiment modules."""

import pytest

from repro.experiments.figure8 import Figure8Point, Figure8Result
from repro.experiments.runner import ComparisonPoint
from repro.sim.metrics import EnergyBreakdown, SimulationResult


def _point(ratio, fps, lpfps):
    return Figure8Point(
        bcet_ratio=ratio, fps_power=fps, lpfps_power=lpfps,
        reduction=1 - lpfps / fps, lpfps_misses=0, fps_misses=0,
    )


class TestFigure8Result:
    def test_max_reduction(self):
        result = Figure8Result(
            application="X", utilization=0.5,
            points=(_point(0.1, 0.5, 0.25), _point(1.0, 0.8, 0.6)),
        )
        assert result.max_reduction == pytest.approx(0.5)
        assert result.reduction_at_wcet == pytest.approx(0.25)

    def test_reduction_at_wcet_fallback(self):
        """Without a ratio-1.0 point, the last point stands in."""
        result = Figure8Result(
            application="X", utilization=0.5,
            points=(_point(0.1, 0.5, 0.25), _point(0.9, 0.8, 0.6)),
        )
        assert result.reduction_at_wcet == pytest.approx(0.25, abs=1e-9) or True
        assert result.reduction_at_wcet == result.points[-1].reduction


class TestComparisonPoint:
    def test_reduction_vs(self):
        a = ComparisonPoint("A", 0.3, 0, 0, 0, 1)
        b = ComparisonPoint("B", 0.6, 0, 0, 0, 1)
        assert a.reduction_vs(b) == pytest.approx(0.5)
        zero = ComparisonPoint("Z", 0.0, 0, 0, 0, 1)
        assert a.reduction_vs(zero) == 0.0


class TestSimulationResultHelpers:
    def test_utilization_of_time(self):
        result = SimulationResult(
            scheduler="X", taskset="ts", duration=100.0,
            energy=EnergyBreakdown(), task_stats={},
            speed_residency={1.0: 60.0, 0.5: 40.0},
        )
        shares = result.utilization_of_time()
        assert shares[1.0] == pytest.approx(0.6)
        assert shares[0.5] == pytest.approx(0.4)

    def test_utilization_of_time_zero_duration(self):
        result = SimulationResult(
            scheduler="X", taskset="ts", duration=0.0,
            energy=EnergyBreakdown(), task_stats={},
        )
        assert result.utilization_of_time() == {}
