"""Trace-equivalence guard: the kernel must match its golden fixtures.

Every registry scheduler, on the DAC'99 example, INS, and CNC workloads,
must produce bit-identical traces and energy totals to the fixtures
captured from the pre-refactor engine.  A digest mismatch means the
kernel's observable behaviour changed — either fix the regression or,
for an *intended* change, regenerate with
``PYTHONPATH=src:. python -m tests.golden.capture --write`` and justify
the new fixtures in the commit message.
"""

from __future__ import annotations

import json

import pytest

from .capture import FIXTURE_PATH, case_id, digest_case, golden_cases

pytestmark = pytest.mark.golden


def _fixtures():
    return json.loads(FIXTURE_PATH.read_text())


@pytest.fixture(scope="module")
def fixtures():
    return _fixtures()


def test_fixture_file_covers_full_matrix():
    """Every registry scheduler x golden workload has a stored fixture."""
    stored = set(_fixtures())
    expected = {case_id(s, w) for s, w, _ in golden_cases()}
    assert stored == expected


@pytest.mark.parametrize(
    "scheduler,workload,duration",
    golden_cases(),
    ids=[case_id(s, w) for s, w, _ in golden_cases()],
)
def test_golden_trace(fixtures, scheduler, workload, duration):
    """One cell's trace digest and energy totals are bit-identical."""
    expected = fixtures[case_id(scheduler, workload)]
    actual = digest_case(scheduler, workload, duration)
    if "energy" in expected:
        assert actual.get("energy") == expected["energy"], (
            f"energy totals drifted for {scheduler} on {workload}: "
            f"{actual.get('energy')} != {expected['energy']}"
        )
    assert actual == expected
