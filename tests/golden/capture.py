"""Capture and digest golden simulation traces.

A *golden case* is one (scheduler, workload) cell simulated with a fixed
seed, BCET ratio, and horizon, with full trace recording.  The digest
pins down everything observable about the run:

* a SHA-256 over the canonical rendering of every trace segment and
  point event (``repr`` floats — shortest round-trip, so bit-exact);
* every energy bucket, as ``repr`` strings (bit-exact float totals);
* the scalar counters (jobs, misses, preemptions, context switches,
  speed changes, sleep entries).

The fixture file is written once from the pre-refactor engine; the test
in :mod:`tests.golden.test_golden_traces` re-simulates each case and
compares digests, so any refactor that changes a single float or event
ordering fails loudly.

Regenerate (only when a behaviour change is intended and understood)::

    PYTHONPATH=src:. python -m tests.golden.capture --write
"""

from __future__ import annotations

import json
import pathlib
from typing import Dict, List, Tuple

from repro.schedulers.registry import available_schedulers, make_scheduler
from repro.sim.engine import simulate
from repro.sim.metrics import SimulationResult
from repro.sim.recording import digest_result
from repro.tasks.generation import GaussianModel
from repro.workloads.registry import get_workload

FIXTURE_PATH = pathlib.Path(__file__).parent / "golden_traces.json"

#: (workload, duration µs) cells; durations are whole small multiples of
#: activity that exercise dispatch, DVS slow-downs, sleep, and wake-ups
#: while keeping the whole matrix fast enough for tier-1.
GOLDEN_WORKLOADS: Tuple[Tuple[str, float], ...] = (
    ("example", 400.0),
    ("ins", 25_000.0),
    ("cnc", 25_000.0),
)

#: Execution-time configuration shared by every case.
GOLDEN_SEED = 1
GOLDEN_BCET_RATIO = 0.5


def golden_cases() -> List[Tuple[str, str, float]]:
    """Every (scheduler, workload, duration) cell of the golden matrix."""
    return [
        (scheduler, workload, duration)
        for scheduler in available_schedulers()
        for workload, duration in GOLDEN_WORKLOADS
    ]


def case_id(scheduler: str, workload: str) -> str:
    """Stable fixture key for one cell."""
    return f"{scheduler}@{workload}"


def run_case(
    scheduler: str, workload: str, duration: float, **kwargs
) -> SimulationResult:
    """Simulate one golden cell with full trace recording.

    Extra *kwargs* flow through to :func:`simulate` — the obs-enabled
    golden tests use this to re-run the matrix with instrumentation on.
    """
    taskset = get_workload(workload).prioritized().with_bcet_ratio(GOLDEN_BCET_RATIO)
    return simulate(
        taskset,
        make_scheduler(scheduler),
        execution_model=GaussianModel(),
        duration=duration,
        seed=GOLDEN_SEED,
        on_miss="record",
        record_trace=True,
        **kwargs,
    )


def digest_case(
    scheduler: str, workload: str, duration: float, **kwargs
) -> Dict[str, object]:
    """Digest one cell; configuration/analysis refusals are golden too.

    The YDS oracle (for one) refuses workloads whose hyperperiod implies
    an impractical offline search — that refusal is pinned behaviour, so
    it is recorded as an ``error`` digest rather than skipped.
    """
    from repro.errors import ReproError

    try:
        return digest_result(run_case(scheduler, workload, duration, **kwargs))
    except ReproError as exc:
        return {"error": f"{type(exc).__name__}: {exc}"}


def capture_all() -> Dict[str, Dict[str, object]]:
    """Run the whole golden matrix and digest every cell."""
    fixtures: Dict[str, Dict[str, object]] = {}
    for scheduler, workload, duration in golden_cases():
        fixtures[case_id(scheduler, workload)] = digest_case(
            scheduler, workload, duration
        )
    return fixtures


def main() -> None:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--write", action="store_true", help="regenerate the fixture file"
    )
    args = parser.parse_args()
    fixtures = capture_all()
    if args.write:
        FIXTURE_PATH.write_text(json.dumps(fixtures, indent=1, sort_keys=True) + "\n")
        print(f"wrote {len(fixtures)} golden cases to {FIXTURE_PATH}")
    else:
        print(json.dumps(fixtures, indent=1, sort_keys=True))


if __name__ == "__main__":
    main()
