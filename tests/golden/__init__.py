"""Golden-trace fixtures pinning the kernel's exact behaviour.

The fixtures in ``golden_traces.json`` were captured from the pre-refactor
monolithic engine (PR 1 state) and assert that every registry scheduler
still produces bit-identical traces and energy totals on the DAC'99
example, INS, and CNC workloads.  Regenerate deliberately with::

    PYTHONPATH=src:. python -m tests.golden.capture --write
"""
