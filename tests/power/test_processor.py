"""Unit tests for the complete processor specification."""

import pytest

from repro.errors import ConfigurationError
from repro.power.processor import ProcessorSpec


class TestArm8Factory:
    def test_paper_parameters(self):
        spec = ProcessorSpec.arm8()
        assert spec.f_max == 100.0
        assert spec.grid.f_min == 8.0
        assert spec.grid.step == 1.0
        assert spec.power.idle_ratio == pytest.approx(0.20)
        assert spec.power.sleep_ratio == pytest.approx(0.05)
        assert spec.transition.rho == pytest.approx(0.07)
        assert spec.wakeup_cycles == 10.0
        assert spec.power.voltage.v_max == pytest.approx(3.3)

    def test_wakeup_delay_is_tenth_of_microsecond(self):
        """10 cycles at 100 MHz."""
        assert ProcessorSpec.arm8().wakeup_delay == pytest.approx(0.1)

    def test_worst_case_transition_about_13us(self):
        # 8 MHz -> 100 MHz at 0.07/us.
        spec = ProcessorSpec.arm8()
        assert spec.worst_case_transition_delay == pytest.approx(0.92 / 0.07)

    def test_quantized_speed_rounds_up(self):
        spec = ProcessorSpec.arm8()
        assert spec.quantized_speed(0.333) == pytest.approx(0.34)
        assert spec.quantized_speed(0.5) == pytest.approx(0.5)
        assert spec.quantized_speed(0.001) == pytest.approx(0.08)

    def test_voltage_and_frequency_lookup(self):
        spec = ProcessorSpec.arm8()
        assert spec.frequency_at(0.5) == pytest.approx(50.0)
        assert 0.5 < spec.voltage_at(0.5) < 3.3


class TestIdealFactory:
    def test_free_everything(self):
        spec = ProcessorSpec.ideal()
        assert spec.wakeup_delay == 0.0
        assert spec.transition.instantaneous
        assert spec.power.sleep_ratio == 0.0
        assert spec.grid.continuous


class TestModifiers:
    def test_with_grid_step(self):
        spec = ProcessorSpec.arm8().with_grid_step(10.0)
        assert spec.grid.step == 10.0
        assert spec.grid.f_max == 100.0  # everything else untouched

    def test_with_rho(self):
        spec = ProcessorSpec.arm8().with_rho(None)
        assert spec.transition.instantaneous
        assert spec.grid.step == 1.0

    def test_negative_wakeup_rejected(self):
        with pytest.raises(ConfigurationError):
            ProcessorSpec(wakeup_cycles=-1.0)
