"""Unit tests for the DVS transition (ramp) model."""

import pytest

from repro.errors import ConfigurationError
from repro.power.transitions import INSTANT, TransitionModel


class TestDuration:
    def test_paper_example(self):
        """30 -> 100 MHz in 10 us gives rho = 0.07/us (paper section 3.3)."""
        model = TransitionModel(rho=0.07)
        assert model.duration(0.3, 1.0) == pytest.approx(10.0)

    def test_symmetric(self):
        model = TransitionModel(rho=0.07)
        assert model.duration(1.0, 0.3) == pytest.approx(10.0)

    def test_worst_case_delay(self):
        model = TransitionModel(rho=0.07)
        assert model.worst_case_delay(0.08) == pytest.approx(0.92 / 0.07)

    def test_instantaneous(self):
        assert INSTANT.duration(0.1, 1.0) == 0.0
        assert INSTANT.instantaneous

    def test_invalid_rho(self):
        with pytest.raises(ConfigurationError):
            TransitionModel(rho=0.0)
        with pytest.raises(ConfigurationError):
            TransitionModel(rho=-1.0)


class TestWorkDuring:
    def test_trapezoid(self):
        model = TransitionModel(rho=0.07)
        # 0.3 -> 1.0 over 10 us: mean speed 0.65 -> 6.5 work units.
        assert model.work_during(0.3, 1.0) == pytest.approx(6.5)

    def test_stalled_processor_does_no_work(self):
        model = TransitionModel(rho=0.07, executes_during_change=False)
        assert model.work_during(0.3, 1.0) == 0.0

    def test_instant_no_ramp_work(self):
        assert INSTANT.work_during(0.3, 1.0) == 0.0


class TestSpeedAt:
    def test_linear_interpolation(self):
        model = TransitionModel(rho=0.07)
        assert model.speed_at(0.3, 1.0, 0.0) == pytest.approx(0.3)
        assert model.speed_at(0.3, 1.0, 5.0) == pytest.approx(0.65)
        assert model.speed_at(0.3, 1.0, 10.0) == pytest.approx(1.0)

    def test_clamps_beyond_ramp(self):
        model = TransitionModel(rho=0.07)
        assert model.speed_at(0.3, 1.0, 99.0) == 1.0
        assert model.speed_at(0.3, 1.0, -1.0) == 0.3

    def test_instant_jumps_to_target(self):
        assert INSTANT.speed_at(0.3, 1.0, 0.0) == 1.0
