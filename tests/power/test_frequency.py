"""Unit tests for the discrete frequency grid."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.power.frequency import FrequencyGrid


class TestGridConstruction:
    def test_paper_grid_levels(self):
        grid = FrequencyGrid(f_max=100.0, f_min=8.0, step=1.0)
        levels = grid.levels()
        assert levels[0] == 8.0
        assert levels[-1] == 100.0
        assert len(levels) == 93

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            FrequencyGrid(f_max=0.0)
        with pytest.raises(ConfigurationError):
            FrequencyGrid(f_min=0.0)
        with pytest.raises(ConfigurationError):
            FrequencyGrid(f_min=200.0, f_max=100.0)
        with pytest.raises(ConfigurationError):
            FrequencyGrid(step=-1.0)

    def test_continuous_grid_has_no_levels(self):
        grid = FrequencyGrid(step=None)
        assert grid.continuous
        with pytest.raises(ConfigurationError):
            grid.levels()

    def test_step_not_dividing_range(self):
        grid = FrequencyGrid(f_max=100.0, f_min=10.0, step=7.0)
        levels = grid.levels()
        assert levels[0] == 10.0
        assert levels[-1] == 100.0


class TestQuantizeUp:
    def test_rounds_up_to_next_level(self):
        grid = FrequencyGrid(f_max=100.0, f_min=8.0, step=1.0)
        assert grid.quantize_up(36.2) == 37.0
        assert grid.quantize_up(37.0) == 37.0

    def test_clamps_to_range(self):
        grid = FrequencyGrid(f_max=100.0, f_min=8.0, step=1.0)
        assert grid.quantize_up(3.0) == 8.0
        assert grid.quantize_up(150.0) == 100.0

    def test_continuous_passthrough(self):
        grid = FrequencyGrid(f_max=100.0, f_min=8.0, step=None)
        assert grid.quantize_up(36.2) == 36.2

    def test_speed_for_ratio_example2(self):
        """Example 2's ratio 0.5 lands exactly on the 50 MHz level."""
        grid = FrequencyGrid(f_max=100.0, f_min=8.0, step=1.0)
        assert grid.speed_for_ratio(0.5) == pytest.approx(0.5)

    def test_speed_for_ratio_rounds_up(self):
        grid = FrequencyGrid(f_max=100.0, f_min=8.0, step=1.0)
        assert grid.speed_for_ratio(0.333) == pytest.approx(0.34)

    def test_speed_for_ratio_rejects_nonpositive(self):
        grid = FrequencyGrid()
        with pytest.raises(ConfigurationError):
            grid.speed_for_ratio(0.0)

    def test_min_speed(self):
        assert FrequencyGrid(f_max=100.0, f_min=8.0).min_speed == pytest.approx(0.08)

    @given(freq=st.floats(0.1, 200.0), step=st.sampled_from([0.5, 1.0, 2.5, 10.0]))
    @settings(max_examples=150, deadline=None)
    def test_property_quantize_up_never_below_request(self, freq, step):
        """Rounding up preserves deadlines: quantised >= requested
        (within the supported range)."""
        grid = FrequencyGrid(f_max=100.0, f_min=8.0, step=step)
        q = grid.quantize_up(freq)
        assert 8.0 <= q <= 100.0
        if 8.0 <= freq <= 100.0:
            assert q >= freq - 1e-9
            assert q - freq <= step + 1e-9
