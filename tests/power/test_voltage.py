"""Unit and property tests for voltage/frequency models."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.power.voltage import AlphaPowerLawVoltage, FixedVoltage, LinearVoltage


class TestAlphaPowerLaw:
    def test_full_speed_point(self):
        model = AlphaPowerLawVoltage(v_max=3.3, v_threshold=0.5)
        assert model.voltage_for_speed(1.0) == pytest.approx(3.3)
        assert model.power_ratio(1.0) == pytest.approx(1.0)
        assert model.speed_ratio(3.3) == pytest.approx(1.0)

    def test_roundtrip_voltage_speed(self):
        model = AlphaPowerLawVoltage()
        for speed in (0.05, 0.1, 0.25, 0.5, 0.9, 1.0):
            v = model.voltage_for_speed(speed)
            assert model.speed_ratio(v) == pytest.approx(speed, rel=1e-9)

    def test_power_better_than_linear_frequency_scaling(self):
        """Voltage drops with frequency, so P(s) < s (the DVS argument)."""
        model = AlphaPowerLawVoltage()
        for speed in (0.1, 0.3, 0.5, 0.8):
            assert model.power_ratio(speed) < speed

    def test_power_worse_than_ideal_cubic(self):
        """A non-zero threshold keeps the voltage above the ideal V ~ f."""
        model = AlphaPowerLawVoltage(v_threshold=0.8)
        ideal = LinearVoltage()
        for speed in (0.1, 0.3, 0.5, 0.8):
            assert model.power_ratio(speed) > ideal.power_ratio(speed)

    def test_below_threshold_speed_zero(self):
        model = AlphaPowerLawVoltage(v_threshold=0.8)
        assert model.speed_ratio(0.5) == 0.0

    def test_generic_alpha_bisection_matches_closed_form_at_two(self):
        closed = AlphaPowerLawVoltage(alpha=2.0)
        # alpha=2.0000001 forces the bisection path; results must agree.
        bisected = AlphaPowerLawVoltage(alpha=2.0000001)
        for speed in (0.1, 0.5, 0.9):
            assert bisected.voltage_for_speed(speed) == pytest.approx(
                closed.voltage_for_speed(speed), rel=1e-5
            )

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            AlphaPowerLawVoltage(v_max=0.0)
        with pytest.raises(ConfigurationError):
            AlphaPowerLawVoltage(v_threshold=4.0, v_max=3.3)
        with pytest.raises(ConfigurationError):
            AlphaPowerLawVoltage(alpha=0.0)

    def test_speed_out_of_domain(self):
        model = AlphaPowerLawVoltage()
        with pytest.raises(ConfigurationError):
            model.voltage_for_speed(0.0)
        with pytest.raises(ConfigurationError):
            model.voltage_for_speed(1.5)

    @given(speed=st.floats(0.01, 1.0))
    @settings(max_examples=100, deadline=None)
    def test_property_power_monotone_and_bounded(self, speed):
        model = AlphaPowerLawVoltage()
        p = model.power_ratio(speed)
        assert 0.0 < p <= 1.0 + 1e-12
        # Monotonicity against a slightly higher speed.
        if speed <= 0.99:
            assert model.power_ratio(speed + 0.01) >= p - 1e-12

    @given(speed=st.floats(0.01, 1.0))
    @settings(max_examples=60, deadline=None)
    def test_property_voltage_between_threshold_and_vmax(self, speed):
        model = AlphaPowerLawVoltage(v_threshold=0.6)
        v = model.voltage_for_speed(speed)
        assert 0.6 < v <= 3.3 + 1e-9


class TestLinearVoltage:
    def test_cubic_power(self):
        model = LinearVoltage()
        assert model.power_ratio(0.5) == pytest.approx(0.125)
        assert model.power_ratio(1.0) == pytest.approx(1.0)

    def test_voltage_linear(self):
        assert LinearVoltage(v_max=2.0).voltage_for_speed(0.5) == pytest.approx(1.0)


class TestFixedVoltage:
    def test_linear_power(self):
        model = FixedVoltage()
        assert model.power_ratio(0.5) == pytest.approx(0.5)

    def test_voltage_constant(self):
        assert FixedVoltage(v_max=3.3).voltage_for_speed(0.1) == 3.3

    def test_energy_per_cycle_is_constant(self):
        """Fixed-voltage slowdown saves power but not energy per work unit:
        the reason DVS must scale voltage (paper section 1)."""
        model = FixedVoltage()
        # energy per work unit = P(s)/s = 1 for all s.
        for s in (0.2, 0.5, 1.0):
            assert model.power_ratio(s) / s == pytest.approx(1.0)
