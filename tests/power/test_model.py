"""Unit tests for the normalised power model."""

import pytest

from repro.errors import ConfigurationError
from repro.power.model import PowerModel
from repro.power.voltage import LinearVoltage


class TestInstantaneousPowers:
    def test_defaults_match_paper(self):
        model = PowerModel()
        assert model.idle_power() == pytest.approx(0.20)
        assert model.sleep_power() == pytest.approx(0.05)
        assert model.active_power(1.0) == pytest.approx(1.0)

    def test_idle_scales_with_speed(self):
        model = PowerModel()
        assert model.idle_power(0.5) == pytest.approx(
            0.2 * model.active_power(0.5)
        )

    def test_invalid_ratios(self):
        with pytest.raises(ConfigurationError):
            PowerModel(sleep_ratio=1.5)
        with pytest.raises(ConfigurationError):
            PowerModel(idle_ratio=-0.1)


class TestEnergies:
    def test_active_energy_linear_in_time(self):
        model = PowerModel()
        assert model.active_energy(1.0, 50.0) == pytest.approx(50.0)
        assert model.active_energy(1.0, 100.0) == pytest.approx(
            2 * model.active_energy(1.0, 50.0)
        )

    def test_sleep_and_idle_energy(self):
        model = PowerModel()
        assert model.sleep_energy(100.0) == pytest.approx(5.0)
        assert model.idle_energy(100.0) == pytest.approx(20.0)

    def test_negative_duration_rejected(self):
        model = PowerModel()
        with pytest.raises(ConfigurationError):
            model.active_energy(1.0, -1.0)
        with pytest.raises(ConfigurationError):
            model.ramp_energy(0.5, 1.0, -1.0)


class TestRampEnergy:
    def test_zero_duration_zero_energy(self):
        assert PowerModel().ramp_energy(0.5, 1.0, 0.0) == 0.0

    def test_flat_ramp_equals_active(self):
        model = PowerModel()
        assert model.ramp_energy(0.7, 0.7, 10.0) == pytest.approx(
            model.active_energy(0.7, 10.0), rel=1e-9
        )

    def test_simpson_exact_for_cubic(self):
        """With V ~ f the power is s^3: Simpson integrates cubics exactly.
        A 0->1 ramp over T has energy T/4."""
        model = PowerModel(voltage=LinearVoltage())
        assert model.ramp_energy(0.0, 1.0, 12.0) == pytest.approx(3.0, rel=1e-12)

    def test_between_endpoint_bounds(self):
        model = PowerModel()
        lo = model.active_power(0.3) * 10.0
        hi = model.active_power(0.9) * 10.0
        e = model.ramp_energy(0.3, 0.9, 10.0)
        assert lo < e < hi

    def test_direction_symmetry(self):
        model = PowerModel()
        up = model.ramp_energy(0.3, 0.9, 10.0)
        down = model.ramp_energy(0.9, 0.3, 10.0)
        assert up == pytest.approx(down, rel=1e-12)
