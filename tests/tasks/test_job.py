"""Unit tests for run-time Job objects."""

import pytest

from repro.errors import InvalidTaskError
from repro.tasks.job import Job
from repro.tasks.task import Task


def _task(**kwargs):
    defaults = dict(name="t", wcet=20.0, period=100.0, bcet=5.0, priority=1)
    defaults.update(kwargs)
    return Task(**defaults)


class TestJobBasics:
    def test_name_combines_task_and_index(self):
        job = Job(_task(), index=3, release_time=300.0, execution_time=10.0)
        assert job.name == "t#3"

    def test_absolute_deadline(self):
        job = Job(_task(), index=0, release_time=50.0, execution_time=10.0)
        assert job.absolute_deadline == 150.0

    def test_next_release(self):
        job = Job(_task(), index=0, release_time=50.0, execution_time=10.0)
        assert job.next_release == 150.0

    def test_priority_passthrough(self):
        job = Job(_task(priority=7), index=0, release_time=0.0, execution_time=10.0)
        assert job.priority == 7

    def test_priority_missing_raises(self):
        job = Job(_task(priority=None), index=0, release_time=0.0, execution_time=10.0)
        with pytest.raises(InvalidTaskError):
            _ = job.priority

    def test_execution_time_outside_range_rejected(self):
        with pytest.raises(InvalidTaskError):
            Job(_task(), index=0, release_time=0.0, execution_time=25.0)
        with pytest.raises(InvalidTaskError):
            Job(_task(), index=0, release_time=0.0, execution_time=1.0)

    def test_execution_time_float_jitter_snapped(self):
        job = Job(_task(), index=0, release_time=0.0,
                  execution_time=20.0 + 1e-12)
        assert job.execution_time == 20.0


class TestJobProgress:
    def test_advance_accumulates(self):
        job = Job(_task(), index=0, release_time=0.0, execution_time=10.0)
        job.advance(4.0)
        job.advance(3.0)
        assert job.executed == pytest.approx(7.0)
        assert job.remaining == pytest.approx(3.0)

    def test_advance_rejects_negative(self):
        job = Job(_task(), index=0, release_time=0.0, execution_time=10.0)
        with pytest.raises(ValueError):
            job.advance(-1.0)

    def test_remaining_wcet_budgets_worst_case(self):
        job = Job(_task(), index=0, release_time=0.0, execution_time=10.0)
        job.advance(6.0)
        # Actual remaining is 4, but the scheduler must budget C - E = 14.
        assert job.remaining == pytest.approx(4.0)
        assert job.remaining_wcet == pytest.approx(14.0)

    def test_remaining_never_negative(self):
        job = Job(_task(), index=0, release_time=0.0, execution_time=10.0)
        job.advance(15.0)
        assert job.remaining == 0.0

    def test_completion_and_response(self):
        job = Job(_task(), index=0, release_time=100.0, execution_time=10.0)
        assert job.response_time is None
        assert not job.completed
        job.completion_time = 130.0
        assert job.completed
        assert job.response_time == pytest.approx(30.0)


class TestDeadlineDetection:
    def test_incomplete_past_deadline(self):
        job = Job(_task(), index=0, release_time=0.0, execution_time=10.0)
        assert not job.missed_deadline(now=99.0)
        assert job.missed_deadline(now=101.0)

    def test_completed_late(self):
        job = Job(_task(), index=0, release_time=0.0, execution_time=10.0)
        job.completion_time = 120.0
        assert job.missed_deadline(now=200.0)

    def test_completed_on_time(self):
        job = Job(_task(), index=0, release_time=0.0, execution_time=10.0)
        job.completion_time = 100.0
        assert not job.missed_deadline(now=200.0)
