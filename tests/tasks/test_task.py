"""Unit tests for the Task / TaskSet model."""

import math

import pytest

from repro.errors import InvalidTaskError, InvalidTaskSetError
from repro.tasks.task import Task, TaskSet


class TestTaskValidation:
    def test_minimal_task_defaults(self):
        t = Task(name="a", wcet=5.0, period=20.0)
        assert t.deadline == 20.0
        assert t.bcet == 5.0
        assert t.phase == 0.0
        assert t.priority is None

    def test_zero_wcet_rejected(self):
        with pytest.raises(InvalidTaskError):
            Task(name="a", wcet=0.0, period=10.0)

    def test_negative_period_rejected(self):
        with pytest.raises(InvalidTaskError):
            Task(name="a", wcet=1.0, period=-5.0)

    def test_empty_name_rejected(self):
        with pytest.raises(InvalidTaskError):
            Task(name="", wcet=1.0, period=5.0)

    def test_deadline_beyond_period_rejected(self):
        with pytest.raises(InvalidTaskError):
            Task(name="a", wcet=1.0, period=5.0, deadline=6.0)

    def test_constrained_deadline_accepted(self):
        t = Task(name="a", wcet=1.0, period=5.0, deadline=3.0)
        assert t.deadline == 3.0

    def test_wcet_beyond_deadline_rejected(self):
        with pytest.raises(InvalidTaskError):
            Task(name="a", wcet=4.0, period=5.0, deadline=3.0)

    def test_bcet_above_wcet_rejected(self):
        with pytest.raises(InvalidTaskError):
            Task(name="a", wcet=2.0, period=5.0, bcet=3.0)

    def test_zero_bcet_rejected(self):
        with pytest.raises(InvalidTaskError):
            Task(name="a", wcet=2.0, period=5.0, bcet=0.0)

    def test_negative_phase_rejected(self):
        with pytest.raises(InvalidTaskError):
            Task(name="a", wcet=1.0, period=5.0, phase=-1.0)


class TestTaskProperties:
    def test_utilization(self):
        assert Task(name="a", wcet=10.0, period=50.0).utilization == pytest.approx(0.2)

    def test_density_uses_min_of_deadline_and_period(self):
        t = Task(name="a", wcet=2.0, period=10.0, deadline=4.0)
        assert t.density == pytest.approx(0.5)

    def test_rate(self):
        assert Task(name="a", wcet=1.0, period=4.0).rate == pytest.approx(0.25)

    def test_release_time_sequence(self):
        t = Task(name="a", wcet=1.0, period=10.0, phase=3.0)
        assert [t.release_time(k) for k in range(3)] == [3.0, 13.0, 23.0]

    def test_release_time_negative_index(self):
        t = Task(name="a", wcet=1.0, period=10.0)
        with pytest.raises(ValueError):
            t.release_time(-1)

    def test_with_priority_is_nondestructive(self):
        t = Task(name="a", wcet=1.0, period=10.0)
        t2 = t.with_priority(3)
        assert t.priority is None
        assert t2.priority == 3

    def test_with_bcet_ratio(self):
        t = Task(name="a", wcet=10.0, period=50.0)
        assert t.with_bcet_ratio(0.3).bcet == pytest.approx(3.0)

    def test_with_bcet_ratio_bounds(self):
        t = Task(name="a", wcet=10.0, period=50.0)
        with pytest.raises(InvalidTaskError):
            t.with_bcet_ratio(0.0)
        with pytest.raises(InvalidTaskError):
            t.with_bcet_ratio(1.5)

    def test_scaled(self):
        t = Task(name="a", wcet=10.0, period=50.0, bcet=4.0)
        s = t.scaled(2.0)
        assert s.wcet == 20.0 and s.bcet == 8.0 and s.period == 50.0

    def test_scaled_rejects_nonpositive(self):
        with pytest.raises(InvalidTaskError):
            Task(name="a", wcet=10.0, period=50.0).scaled(0.0)


class TestTaskSet:
    def _set(self):
        return TaskSet(
            [
                Task(name="a", wcet=10.0, period=50.0),
                Task(name="b", wcet=20.0, period=80.0),
            ],
            name="s",
        )

    def test_len_iter_getitem(self):
        ts = self._set()
        assert len(ts) == 2
        assert [t.name for t in ts] == ["a", "b"]
        assert ts[1].name == "b"

    def test_empty_rejected(self):
        with pytest.raises(InvalidTaskSetError):
            TaskSet([])

    def test_duplicate_names_rejected(self):
        with pytest.raises(InvalidTaskSetError):
            TaskSet([Task(name="a", wcet=1, period=5), Task(name="a", wcet=1, period=6)])

    def test_lookup_by_name(self):
        ts = self._set()
        assert ts.task("b").wcet == 20.0
        with pytest.raises(KeyError):
            ts.task("zzz")

    def test_utilization_sum(self):
        assert self._set().utilization == pytest.approx(10 / 50 + 20 / 80)

    def test_hyperperiod_integer_periods(self):
        assert self._set().hyperperiod == pytest.approx(400.0)

    def test_hyperperiod_fractional_periods(self):
        ts = TaskSet([Task(name="a", wcet=0.1, period=0.5),
                      Task(name="b", wcet=0.1, period=0.75)])
        assert ts.hyperperiod == pytest.approx(1.5)

    def test_wcet_range(self):
        assert self._set().wcet_range == (10.0, 20.0)

    def test_priorities_missing_detected(self):
        ts = self._set()
        assert not ts.has_priorities
        with pytest.raises(InvalidTaskSetError):
            ts.assert_priorities()

    def test_duplicate_priorities_rejected(self):
        ts = TaskSet([
            Task(name="a", wcet=1, period=5, priority=1),
            Task(name="b", wcet=1, period=6, priority=1),
        ])
        with pytest.raises(InvalidTaskSetError):
            ts.assert_priorities()

    def test_by_priority_ordering(self):
        ts = TaskSet([
            Task(name="a", wcet=1, period=5, priority=2),
            Task(name="b", wcet=1, period=6, priority=1),
        ])
        assert [t.name for t in ts.by_priority()] == ["b", "a"]

    def test_with_bcet_ratio_applies_to_all(self):
        ts = self._set().with_bcet_ratio(0.5)
        assert [t.bcet for t in ts] == [5.0, 10.0]

    def test_scaled_applies_to_all(self):
        ts = self._set().scaled(0.5)
        assert [t.wcet for t in ts] == [5.0, 10.0]

    def test_higher_priority_than(self):
        ts = TaskSet([
            Task(name="a", wcet=1, period=5, priority=0),
            Task(name="b", wcet=1, period=6, priority=1),
            Task(name="c", wcet=1, period=7, priority=2),
        ])
        assert [t.name for t in ts.higher_priority_than(ts.task("c"))] == ["a", "b"]

    def test_equality_and_hash(self):
        assert self._set() == self._set()
        assert hash(self._set()) == hash(self._set())
