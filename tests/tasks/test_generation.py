"""Unit and property tests for execution-time models and task generation."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.tasks.generation import (
    BcetModel,
    BimodalModel,
    GaussianModel,
    UniformModel,
    WcetModel,
    draw_job_demands,
    log_uniform_periods,
    random_taskset,
    uunifast,
)
from repro.tasks.task import Task, TaskSet


def _task(wcet=100.0, bcet=20.0):
    return Task(name="t", wcet=wcet, period=1000.0, bcet=bcet)


class TestFixedModels:
    def test_wcet_model(self):
        assert WcetModel().sample(_task(), random.Random(0)) == 100.0

    def test_bcet_model(self):
        assert BcetModel().sample(_task(), random.Random(0)) == 20.0


class TestGaussianModel:
    """The paper's Eqs. (4)-(5): m=(B+W)/2, sigma=(W-B)/6, clamped."""

    def test_draws_stay_in_range(self):
        rng = random.Random(1)
        model = GaussianModel()
        task = _task()
        for _ in range(2000):
            v = model.sample(task, rng)
            assert task.bcet <= v <= task.wcet

    def test_mean_matches_equation_4(self):
        rng = random.Random(2)
        model = GaussianModel()
        task = _task()
        samples = [model.sample(task, rng) for _ in range(20000)]
        assert sum(samples) / len(samples) == pytest.approx(60.0, abs=1.0)

    def test_spread_matches_equation_5(self):
        rng = random.Random(3)
        model = GaussianModel()
        task = _task()
        samples = [model.sample(task, rng) for _ in range(20000)]
        mean = sum(samples) / len(samples)
        var = sum((s - mean) ** 2 for s in samples) / len(samples)
        # sigma = (100-20)/6 = 13.33; clamping shaves a little variance.
        assert var**0.5 == pytest.approx(13.33, rel=0.05)

    def test_degenerate_no_variation(self):
        task = _task(bcet=100.0)
        assert GaussianModel().sample(task, random.Random(0)) == 100.0


class TestUniformAndBimodal:
    def test_uniform_in_range(self):
        rng = random.Random(4)
        task = _task()
        for _ in range(500):
            v = UniformModel().sample(task, rng)
            assert task.bcet <= v <= task.wcet

    def test_bimodal_concentrates_near_modes(self):
        rng = random.Random(5)
        model = BimodalModel(p_short=0.8, spread=0.05)
        task = _task()
        samples = [model.sample(task, rng) for _ in range(4000)]
        span = task.wcet - task.bcet
        near_bcet = sum(1 for s in samples if s <= task.bcet + 0.1 * span)
        near_wcet = sum(1 for s in samples if s >= task.wcet - 0.1 * span)
        assert near_bcet + near_wcet == len(samples)
        assert near_bcet / len(samples) == pytest.approx(0.8, abs=0.05)

    def test_bimodal_parameter_validation(self):
        with pytest.raises(ConfigurationError):
            BimodalModel(p_short=1.5)
        with pytest.raises(ConfigurationError):
            BimodalModel(spread=0.9)

    def test_bimodal_degenerate_no_variation(self):
        task = _task(bcet=100.0)
        assert BimodalModel().sample(task, random.Random(0)) == 100.0


class TestUunifast:
    def test_sums_to_target(self):
        utils = uunifast(8, 0.75, random.Random(6))
        assert sum(utils) == pytest.approx(0.75)
        assert len(utils) == 8

    def test_all_positive(self):
        utils = uunifast(20, 0.9, random.Random(7))
        assert all(u > 0 for u in utils)

    def test_single_task(self):
        assert uunifast(1, 0.5, random.Random(0)) == [0.5]

    def test_invalid_arguments(self):
        with pytest.raises(ConfigurationError):
            uunifast(0, 0.5, random.Random(0))
        with pytest.raises(ConfigurationError):
            uunifast(3, 0.0, random.Random(0))

    @given(n=st.integers(1, 30), u=st.floats(0.05, 2.0), seed=st.integers(0, 10_000))
    @settings(max_examples=60, deadline=None)
    def test_property_sum_and_positivity(self, n, u, seed):
        utils = uunifast(n, u, random.Random(seed))
        assert len(utils) == n
        assert sum(utils) == pytest.approx(u, rel=1e-9)
        assert all(x >= 0 for x in utils)


class TestRandomTaskset:
    def test_period_bounds_and_granularity(self):
        periods = log_uniform_periods(50, random.Random(8), lo=1000, hi=50000,
                                      granularity=100)
        for p in periods:
            assert 100 <= p <= 50100
            assert p % 100 == 0

    def test_invalid_period_bounds(self):
        with pytest.raises(ConfigurationError):
            log_uniform_periods(3, random.Random(0), lo=100, hi=50)

    def test_taskset_shape(self):
        ts = random_taskset(6, 0.6, random.Random(9), bcet_ratio=0.5)
        assert len(ts) == 6
        for t in ts:
            assert t.bcet <= t.wcet <= t.period
        # min_wcet clamping can only raise utilisation slightly.
        assert ts.utilization >= 0.6 - 1e-9

    @given(seed=st.integers(0, 1000))
    @settings(max_examples=40, deadline=None)
    def test_property_valid_tasksets(self, seed):
        rng = random.Random(seed)
        ts = random_taskset(rng.randint(1, 12), rng.uniform(0.1, 0.9), rng,
                            bcet_ratio=rng.uniform(0.1, 1.0))
        # Construction succeeding means every task passed model validation.
        assert isinstance(ts, TaskSet)


class TestDrawJobDemands:
    def test_deterministic_per_seed(self):
        ts = TaskSet([_task()])
        a = draw_job_demands(ts, GaussianModel(), 10, seed=3)
        b = draw_job_demands(ts, GaussianModel(), 10, seed=3)
        assert a == b

    def test_counts(self):
        ts = TaskSet([Task(name="a", wcet=5, period=10),
                      Task(name="b", wcet=5, period=10)])
        demands = draw_job_demands(ts, WcetModel(), 7)
        assert set(demands) == {"a", "b"}
        assert all(len(v) == 7 for v in demands.values())
