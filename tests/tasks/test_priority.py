"""Unit tests for priority assignment policies."""

import pytest

from repro.errors import InvalidTaskSetError
from repro.tasks.priority import audsley, deadline_monotonic, explicit, rate_monotonic
from repro.tasks.task import Task, TaskSet


def _set(*specs):
    return TaskSet([Task(name=n, wcet=c, period=t, deadline=d)
                    for n, c, t, d in specs])


class TestRateMonotonic:
    def test_shorter_period_higher_priority(self):
        ts = rate_monotonic(_set(("slow", 1, 100, None), ("fast", 1, 10, None)))
        assert ts.task("fast").priority < ts.task("slow").priority

    def test_ties_break_by_declaration_order(self):
        ts = rate_monotonic(_set(("a", 1, 50, None), ("b", 1, 50, None)))
        assert ts.task("a").priority < ts.task("b").priority

    def test_preserves_declaration_order_of_set(self):
        ts = rate_monotonic(_set(("slow", 1, 100, None), ("fast", 1, 10, None)))
        assert [t.name for t in ts] == ["slow", "fast"]

    def test_table1_matches_paper(self):
        ts = rate_monotonic(_set(
            ("tau1", 10, 50, None), ("tau2", 20, 80, None), ("tau3", 40, 100, None)
        ))
        assert [t.name for t in ts.by_priority()] == ["tau1", "tau2", "tau3"]


class TestDeadlineMonotonic:
    def test_shorter_deadline_higher_priority(self):
        ts = deadline_monotonic(_set(("a", 1, 100, 90.0), ("b", 1, 50, 50.0)))
        assert ts.task("b").priority < ts.task("a").priority

    def test_differs_from_rm_with_constrained_deadlines(self):
        specs = (("a", 1, 50, 50.0), ("b", 1, 100, 20.0))
        rm = rate_monotonic(_set(*specs))
        dm = deadline_monotonic(_set(*specs))
        assert rm.task("a").priority < rm.task("b").priority
        assert dm.task("b").priority < dm.task("a").priority


class TestExplicit:
    def test_positional_assignment(self):
        ts = explicit(_set(("a", 1, 50, None), ("b", 1, 60, None)), [5, 2])
        assert ts.task("a").priority == 5
        assert ts.task("b").priority == 2

    def test_length_mismatch_rejected(self):
        with pytest.raises(InvalidTaskSetError):
            explicit(_set(("a", 1, 50, None)), [1, 2])

    def test_duplicates_rejected(self):
        with pytest.raises(InvalidTaskSetError):
            explicit(_set(("a", 1, 50, None), ("b", 1, 60, None)), [1, 1])


class TestAudsley:
    def test_schedulable_set_gets_assignment(self):
        ts = audsley(_set(("a", 10, 50, None), ("b", 20, 80, None), ("c", 40, 100, None)))
        assert ts is not None
        ts.assert_priorities()

    def test_assignment_is_feasible_per_rta(self):
        from repro.analysis.rta import is_schedulable

        ts = audsley(_set(("a", 10, 50, None), ("b", 20, 80, None), ("c", 40, 100, None)))
        assert is_schedulable(ts)

    def test_infeasible_set_returns_none(self):
        # Utilisation > 1: no fixed-priority assignment can work.
        ts = audsley(_set(("a", 40, 50, None), ("b", 40, 60, None)))
        assert ts is None

    def test_beats_dm_on_crafted_set(self):
        # Audsley is optimal: if it fails, RM must fail too.
        tasks = _set(("a", 25, 50, None), ("b", 40, 100, None))
        from repro.analysis.rta import is_schedulable

        result = audsley(tasks)
        if result is None:
            assert not is_schedulable(rate_monotonic(tasks))
        else:
            assert is_schedulable(result)
