"""Tests for the Markov-modulated (correlated) execution-time model."""

import random

import pytest

from repro.errors import ConfigurationError
from repro.tasks.generation import MarkovModel
from repro.tasks.task import Task


def _task(name="t", wcet=100.0, bcet=20.0):
    return Task(name=name, wcet=wcet, period=1000.0, bcet=bcet)


class TestMarkovModel:
    def test_draws_stay_in_range(self):
        model = MarkovModel()
        rng = random.Random(1)
        task = _task()
        for _ in range(2000):
            v = model.sample(task, rng)
            assert task.bcet <= v <= task.wcet

    def test_parameter_validation(self):
        with pytest.raises(ConfigurationError):
            MarkovModel(p_stay_quiet=1.5)
        with pytest.raises(ConfigurationError):
            MarkovModel(p_stay_loaded=-0.1)
        with pytest.raises(ConfigurationError):
            MarkovModel(spread=0.9)

    def test_degenerate_no_variation(self):
        task = _task(bcet=100.0)
        assert MarkovModel().sample(task, random.Random(0)) == 100.0

    def test_burst_persistence(self):
        """Consecutive draws are positively correlated: runs of loaded
        samples are far longer than under i.i.d. bimodal draws."""
        model = MarkovModel(p_stay_quiet=0.95, p_stay_loaded=0.95)
        rng = random.Random(7)
        task = _task()
        mid = (task.bcet + task.wcet) / 2
        states = [model.sample(task, rng) > mid for _ in range(5000)]
        # Count state changes; persistence 0.95 -> ~5% switch rate.
        switches = sum(1 for a, b in zip(states, states[1:]) if a != b)
        assert switches / len(states) < 0.12

    def test_per_task_state_is_independent(self):
        model = MarkovModel(p_stay_quiet=1.0, p_stay_loaded=1.0)
        rng = random.Random(3)
        a, b = _task("a"), _task("b")
        # With absorbing states both tasks stay quiet forever,
        # and their states do not interfere.
        for _ in range(50):
            va = model.sample(a, rng)
            vb = model.sample(b, rng)
            assert va <= a.bcet + 0.1 * (a.wcet - a.bcet)
            assert vb <= b.bcet + 0.1 * (b.wcet - b.bcet)

    def test_stresses_lpfps_more_than_gaussian(self):
        """Correlated bursts reduce reclaimable slack during loaded spells;
        LPFPS must still meet every deadline."""
        from repro.core.lpfps import LpfpsScheduler
        from repro.sim.engine import simulate
        from repro.workloads.registry import get_workload

        ts = get_workload("cnc").prioritized().with_bcet_ratio(0.2)
        result = simulate(ts, LpfpsScheduler(), execution_model=MarkovModel(),
                          duration=500_000.0, seed=5)
        assert not result.missed
        assert result.jobs_completed > 0
