"""Unit tests for simulation metrics containers."""

import pytest

from repro.sim.metrics import (
    EnergyBreakdown,
    SimulationResult,
    TaskStats,
    merge_speed_residency,
)
from repro.tasks.job import Job
from repro.tasks.task import Task


def _result(energy=None, duration=100.0):
    return SimulationResult(
        scheduler="X",
        taskset="ts",
        duration=duration,
        energy=energy or EnergyBreakdown(active=50.0, idle=10.0),
        task_stats={},
    )


class TestEnergyBreakdown:
    def test_total(self):
        e = EnergyBreakdown(active=1.0, ramp=2.0, idle=3.0, sleep=4.0, wakeup=5.0)
        assert e.total == 15.0

    def test_add(self):
        e = EnergyBreakdown()
        e.add("active", 2.5)
        e.add("active", 2.5)
        e.add("sleep", 1.0)
        assert e.active == 5.0 and e.sleep == 1.0

    def test_as_dict_keys(self):
        assert set(EnergyBreakdown().as_dict()) == {
            "active", "ramp", "idle", "sleep", "wakeup", "scheduler"
        }

    def test_total_includes_scheduler_overhead(self):
        e = EnergyBreakdown(active=1.0, scheduler=2.0)
        assert e.total == 3.0


class TestTaskStats:
    def test_record_completion(self):
        task = Task(name="t", wcet=10.0, period=100.0, priority=1)
        stats = TaskStats("t")
        for release, completion in [(0.0, 30.0), (100.0, 110.0)]:
            job = Job(task, index=0, release_time=release, execution_time=10.0)
            job.completion_time = completion
            stats.record_completion(job)
        assert stats.jobs_completed == 2
        assert stats.worst_response == 30.0
        assert stats.average_response == pytest.approx(20.0)

    def test_average_with_no_jobs(self):
        assert TaskStats("t").average_response == 0.0


class TestSimulationResult:
    def test_average_power(self):
        assert _result().average_power == pytest.approx(0.6)

    def test_zero_duration(self):
        assert _result(duration=0.0).average_power == 0.0

    def test_power_reduction(self):
        lpfps = _result(EnergyBreakdown(active=30.0))
        fps = _result(EnergyBreakdown(active=60.0))
        assert lpfps.power_reduction_vs(fps) == pytest.approx(0.5)

    def test_reduction_against_zero_baseline(self):
        assert _result().power_reduction_vs(_result(EnergyBreakdown())) == 0.0

    def test_summary_contains_key_numbers(self):
        text = _result().summary()
        assert "X on ts" in text
        assert "0.6" in text


class TestSpeedResidency:
    def test_merge_buckets(self):
        residency = {}
        merge_speed_residency(residency, 0.501, 10.0)
        merge_speed_residency(residency, 0.499, 5.0)
        assert residency == {0.5: 15.0}

    def test_zero_duration_ignored(self):
        residency = {}
        merge_speed_residency(residency, 0.5, 0.0)
        assert residency == {}
