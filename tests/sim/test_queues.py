"""Unit tests for the run queue and delay queue."""

import pytest

from repro.sim.queues import DelayQueue, RunQueue, deadline_key, priority_key
from repro.tasks.job import Job
from repro.tasks.task import Task


def _job(name="t", priority=1, release=0.0, period=100.0, index=0, wcet=10.0):
    task = Task(name=name, wcet=wcet, period=period, priority=priority)
    return Job(task, index=index, release_time=release, execution_time=wcet)


class TestRunQueue:
    def test_empty(self):
        q = RunQueue()
        assert q.empty
        assert q.peek() is None
        with pytest.raises(IndexError):
            q.pop()

    def test_priority_ordering(self):
        q = RunQueue()
        q.push(_job("lo", priority=5))
        q.push(_job("hi", priority=1))
        q.push(_job("mid", priority=3))
        assert [q.pop().task.name for _ in range(3)] == ["hi", "mid", "lo"]

    def test_fifo_within_priority(self):
        q = RunQueue()
        first = _job("a", priority=2, index=0)
        second = _job("a", priority=2, index=1)
        q.push(first)
        q.push(second)
        assert q.pop() is first
        assert q.pop() is second

    def test_peek_does_not_remove(self):
        q = RunQueue()
        q.push(_job("a", priority=2))
        assert q.peek() is not None
        assert len(q) == 1

    def test_deadline_key_for_edf(self):
        q = RunQueue(key=deadline_key)
        late = _job("late", priority=1, release=0.0, period=500.0)
        soon = _job("soon", priority=9, release=0.0, period=50.0)
        q.push(late)
        q.push(soon)
        assert q.pop() is soon  # earlier absolute deadline wins despite priority

    def test_jobs_listing_sorted(self):
        q = RunQueue()
        q.push(_job("b", priority=2))
        q.push(_job("a", priority=1))
        assert [j.task.name for j in q.jobs()] == ["a", "b"]

    def test_tie_break_deterministic_across_refills(self):
        """Equal keys drain in insertion order on every fill of the queue."""
        q = RunQueue()
        for _ in range(3):
            jobs = [_job(f"t{i}", priority=4, index=i) for i in range(5)]
            for job in jobs:
                q.push(job)
            assert [q.pop() for _ in range(5)] == jobs
            assert q.empty

    def test_deadline_tie_breaks_fifo(self):
        """EDF ties (identical absolute deadlines) stay insertion-ordered."""
        q = RunQueue(key=deadline_key)
        first = _job("a", priority=7, release=0.0, period=100.0)
        second = _job("b", priority=2, release=0.0, period=100.0)
        q.push(first)
        q.push(second)
        assert q.pop() is first
        assert q.pop() is second


class TestDelayQueue:
    def _task(self, name, priority, period=100.0):
        return Task(name=name, wcet=10.0, period=period, priority=priority)

    def test_next_release_time(self):
        q = DelayQueue()
        assert q.next_release_time() is None
        q.push(self._task("a", 1), 50.0, 0)
        q.push(self._task("b", 2), 30.0, 0)
        assert q.next_release_time() == 30.0

    def test_pop_due_ordering(self):
        q = DelayQueue()
        q.push(self._task("a", 1), 50.0, 0)
        q.push(self._task("b", 2), 30.0, 1)
        q.push(self._task("c", 3), 80.0, 2)
        due = q.pop_due(50.0)
        assert [(t.name, r, i) for t, r, i in due] == [("b", 30.0, 1), ("a", 50.0, 0)]
        assert q.next_release_time() == 80.0

    def test_pop_due_tolerance(self):
        q = DelayQueue()
        q.push(self._task("a", 1), 50.0, 0)
        assert q.pop_due(50.0 - 1e-12)  # within engine tolerance

    def test_simultaneous_releases_priority_order(self):
        """Figure 3(a): at t=0 the run queue fills in priority order."""
        q = DelayQueue()
        q.push(self._task("tau3", 3), 0.0, 0)
        q.push(self._task("tau1", 1), 0.0, 0)
        q.push(self._task("tau2", 2), 0.0, 0)
        names = [t.name for t, _, _ in q.pop_due(0.0)]
        assert names == ["tau1", "tau2", "tau3"]

    def test_entries_listing(self):
        q = DelayQueue()
        q.push(self._task("a", 1), 50.0, 0)
        q.push(self._task("b", 2), 30.0, 0)
        assert q.entries() == [(30.0, "b"), (50.0, "a")]

    def test_unprioritised_tasks_allowed(self):
        q = DelayQueue()
        q.push(Task(name="x", wcet=1.0, period=10.0), 5.0, 0)
        assert q.next_release_time() == 5.0

    def test_simultaneous_equal_priority_insertion_order(self):
        """Same instant, same priority: the insertion counter decides."""
        q = DelayQueue()
        for name in ("first", "second", "third"):
            q.push(self._task(name, priority=2), 40.0, 0)
        names = [t.name for t, _, _ in q.pop_due(40.0)]
        assert names == ["first", "second", "third"]

    def test_simultaneous_unprioritised_insertion_order(self):
        """Unprioritised tasks tie-break by insertion order, deterministically."""
        q = DelayQueue()
        for name in ("u1", "u2", "u3"):
            q.push(Task(name=name, wcet=1.0, period=10.0), 7.0, 0)
        names = [t.name for t, _, _ in q.pop_due(7.0)]
        assert names == ["u1", "u2", "u3"]

    def test_jitter_entry_keeps_nominal_release(self):
        """A jittered entry fires at the perturbed time but reports the
        nominal release (the deadline anchor)."""
        q = DelayQueue()
        q.push(self._task("a", 1), 52.0, 3, nominal=50.0)
        assert q.pop_due(51.0) == []
        ((task, release, index),) = q.pop_due(52.0)
        assert (task.name, release, index) == ("a", 50.0, 3)


class TestDelayQueueRearming:
    """Ordering survives the wake-timer pop/re-push cycle (PR 1 guards)."""

    def _task(self, name, priority, period=100.0):
        return Task(name=name, wcet=10.0, period=period, priority=priority)

    def test_rearm_after_pop_restores_order(self):
        """Popping a due release and re-arming its next period keeps the
        remaining entries in due order."""
        q = DelayQueue()
        a = self._task("a", 1)
        b = self._task("b", 2)
        q.push(a, 50.0, 0)
        q.push(b, 80.0, 0)
        ((task, _, _),) = q.pop_due(50.0)
        assert task is a
        q.push(a, 150.0, 1)  # re-arm next period
        assert q.entries() == [(80.0, "b"), (150.0, "a")]

    def test_rearm_earlier_than_existing_entries(self):
        """A re-armed timer earlier than queued entries becomes the head
        (a guard shortening a wake timer must not fire late)."""
        q = DelayQueue()
        q.push(self._task("a", 1), 100.0, 0)
        q.push(self._task("b", 2), 120.0, 0)
        q.pop_due(100.0)
        q.push(self._task("a", 1), 110.0, 1)  # earlier than b's entry
        assert q.next_release_time() == 110.0
        names = [t.name for t, _, _ in q.pop_due(120.0)]
        assert names == ["a", "b"]

    def test_rearm_collides_with_release_priority_decides(self):
        """A wake re-armed onto an existing release instant drains in
        priority order regardless of push order."""
        q = DelayQueue()
        q.push(self._task("lo", 5), 200.0, 0)
        q.push(self._task("hi", 1), 200.0, 0)
        names = [t.name for t, _, _ in q.pop_due(200.0)]
        assert names == ["hi", "lo"]
