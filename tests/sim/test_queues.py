"""Unit tests for the run queue and delay queue."""

import pytest

from repro.sim.queues import DelayQueue, RunQueue, deadline_key, priority_key
from repro.tasks.job import Job
from repro.tasks.task import Task


def _job(name="t", priority=1, release=0.0, period=100.0, index=0, wcet=10.0):
    task = Task(name=name, wcet=wcet, period=period, priority=priority)
    return Job(task, index=index, release_time=release, execution_time=wcet)


class TestRunQueue:
    def test_empty(self):
        q = RunQueue()
        assert q.empty
        assert q.peek() is None
        with pytest.raises(IndexError):
            q.pop()

    def test_priority_ordering(self):
        q = RunQueue()
        q.push(_job("lo", priority=5))
        q.push(_job("hi", priority=1))
        q.push(_job("mid", priority=3))
        assert [q.pop().task.name for _ in range(3)] == ["hi", "mid", "lo"]

    def test_fifo_within_priority(self):
        q = RunQueue()
        first = _job("a", priority=2, index=0)
        second = _job("a", priority=2, index=1)
        q.push(first)
        q.push(second)
        assert q.pop() is first
        assert q.pop() is second

    def test_peek_does_not_remove(self):
        q = RunQueue()
        q.push(_job("a", priority=2))
        assert q.peek() is not None
        assert len(q) == 1

    def test_deadline_key_for_edf(self):
        q = RunQueue(key=deadline_key)
        late = _job("late", priority=1, release=0.0, period=500.0)
        soon = _job("soon", priority=9, release=0.0, period=50.0)
        q.push(late)
        q.push(soon)
        assert q.pop() is soon  # earlier absolute deadline wins despite priority

    def test_jobs_listing_sorted(self):
        q = RunQueue()
        q.push(_job("b", priority=2))
        q.push(_job("a", priority=1))
        assert [j.task.name for j in q.jobs()] == ["a", "b"]


class TestDelayQueue:
    def _task(self, name, priority, period=100.0):
        return Task(name=name, wcet=10.0, period=period, priority=priority)

    def test_next_release_time(self):
        q = DelayQueue()
        assert q.next_release_time() is None
        q.push(self._task("a", 1), 50.0, 0)
        q.push(self._task("b", 2), 30.0, 0)
        assert q.next_release_time() == 30.0

    def test_pop_due_ordering(self):
        q = DelayQueue()
        q.push(self._task("a", 1), 50.0, 0)
        q.push(self._task("b", 2), 30.0, 1)
        q.push(self._task("c", 3), 80.0, 2)
        due = q.pop_due(50.0)
        assert [(t.name, r, i) for t, r, i in due] == [("b", 30.0, 1), ("a", 50.0, 0)]
        assert q.next_release_time() == 80.0

    def test_pop_due_tolerance(self):
        q = DelayQueue()
        q.push(self._task("a", 1), 50.0, 0)
        assert q.pop_due(50.0 - 1e-12)  # within engine tolerance

    def test_simultaneous_releases_priority_order(self):
        """Figure 3(a): at t=0 the run queue fills in priority order."""
        q = DelayQueue()
        q.push(self._task("tau3", 3), 0.0, 0)
        q.push(self._task("tau1", 1), 0.0, 0)
        q.push(self._task("tau2", 2), 0.0, 0)
        names = [t.name for t, _, _ in q.pop_due(0.0)]
        assert names == ["tau1", "tau2", "tau3"]

    def test_entries_listing(self):
        q = DelayQueue()
        q.push(self._task("a", 1), 50.0, 0)
        q.push(self._task("b", 2), 30.0, 0)
        assert q.entries() == [(30.0, "b"), (50.0, "a")]

    def test_unprioritised_tasks_allowed(self):
        q = DelayQueue()
        q.push(Task(name="x", wcet=1.0, period=10.0), 5.0, 0)
        assert q.next_release_time() == 5.0
