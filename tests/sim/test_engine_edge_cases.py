"""Engine edge cases: simultaneity, horizons, overload, degenerate sets."""

import pytest

from repro.core.lpfps import LpfpsScheduler
from repro.power.processor import ProcessorSpec
from repro.schedulers.fps import FpsScheduler
from repro.schedulers.powerdown import TimerPowerDownFps
from repro.sim.engine import simulate
from repro.tasks.generation import WcetModel
from repro.tasks.priority import rate_monotonic
from repro.tasks.task import Task, TaskSet


class TestSimultaneousEvents:
    def test_completion_and_release_same_instant(self):
        """A job finishing exactly when the next task releases: dispatch is
        seamless, no idle gap, no double execution."""
        ts = rate_monotonic(TaskSet([
            Task(name="a", wcet=50.0, period=100.0),
            Task(name="b", wcet=25.0, period=200.0),
        ]))
        result = simulate(ts, FpsScheduler(), duration=400.0, record_trace=True)
        busy = result.trace.busy_intervals()
        assert busy[0] == (0.0, 75.0)  # a then b back-to-back
        assert not result.missed

    def test_all_tasks_same_period(self):
        ts = rate_monotonic(TaskSet([
            Task(name=f"t{i}", wcet=10.0, period=100.0) for i in range(5)
        ]))
        result = simulate(ts, FpsScheduler(), duration=300.0, record_trace=True)
        assert not result.missed
        # Declaration order is preserved within the shared priority level.
        first_cycle = [s.task for s in result.trace.segments if s.state == "run"][:5]
        assert first_cycle == [f"t{i}" for i in range(5)]

    def test_release_exactly_at_horizon(self):
        ts = TaskSet([Task(name="a", wcet=10.0, period=100.0, priority=0)])
        result = simulate(ts, FpsScheduler(), duration=200.0)
        # Two completed jobs; the release at t=200 never materialises.
        assert result.jobs_completed == 2


class TestDegenerateSets:
    def test_task_filling_entire_period(self):
        ts = TaskSet([Task(name="a", wcet=100.0, period=100.0, priority=0)])
        result = simulate(ts, FpsScheduler(), duration=500.0)
        assert not result.missed
        assert result.energy.idle == 0.0
        assert result.average_power == pytest.approx(1.0)

    def test_lpfps_cannot_slow_a_saturating_task(self):
        ts = TaskSet([Task(name="a", wcet=100.0, period=100.0, priority=0)])
        result = simulate(ts, LpfpsScheduler(), spec=ProcessorSpec.ideal(),
                          duration=500.0)
        assert not result.missed
        assert result.speed_changes == 0

    def test_very_short_horizon(self):
        ts = TaskSet([Task(name="a", wcet=10.0, period=100.0, priority=0)])
        result = simulate(ts, FpsScheduler(), duration=5.0)
        # The job is mid-flight at the horizon; no miss (deadline at 100).
        assert result.jobs_completed == 0
        assert not result.missed
        assert result.energy.total == pytest.approx(5.0)

    def test_tiny_wcet_relative_to_period(self):
        ts = TaskSet([Task(name="a", wcet=0.5, period=1_000_000.0, priority=0)])
        result = simulate(ts, LpfpsScheduler(), duration=2_000_000.0)
        assert not result.missed
        assert result.sleep_entries >= 1


class TestOverloadRecording:
    def _overloaded(self):
        return rate_monotonic(TaskSet([
            Task(name="hi", wcet=60.0, period=100.0),
            Task(name="lo", wcet=60.0, period=120.0),
        ]))

    def test_fps_overload_records_and_survives(self):
        result = simulate(self._overloaded(), FpsScheduler(),
                          duration=3_000.0, on_miss="record")
        assert result.missed
        # The kernel model delays re-releases of the overrunning task, so
        # the engine stays live and work conserving.
        assert result.jobs_completed > 0
        assert result.energy.idle == 0.0

    def test_lpfps_overload_records_and_survives(self):
        result = simulate(self._overloaded(), LpfpsScheduler(),
                          duration=3_000.0, on_miss="record")
        assert result.missed
        assert result.jobs_completed > 0

    def test_late_release_catches_up(self):
        """After an overrun, the next release is already due and must enter
        the run queue immediately on completion."""
        result = simulate(self._overloaded(), FpsScheduler(),
                          duration=3_000.0, on_miss="record",
                          record_trace=True)
        releases = result.trace.events_of_kind("release")
        assert len(releases) > 2


class TestSleepEdgeCases:
    def test_wakeup_longer_than_idle_gap(self):
        """Sleeping is skipped when the timer would already have fired."""
        spec = ProcessorSpec(wakeup_cycles=10_000.0)  # 100 us wakeup
        ts = TaskSet([Task(name="a", wcet=50.0, period=100.0, priority=0)])
        result = simulate(ts, TimerPowerDownFps(), spec=spec, duration=1_000.0)
        assert result.sleep_entries == 0
        assert not result.missed

    def test_sleep_through_horizon(self):
        ts = TaskSet([Task(name="a", wcet=10.0, period=10_000.0, priority=0)])
        result = simulate(ts, TimerPowerDownFps(), duration=5_000.0)
        assert result.sleep_entries == 1
        assert result.energy.sleep == pytest.approx(0.05 * (5_000.0 - 10.0))

    def test_lpfps_idles_when_powerdown_not_worthwhile(self):
        spec = ProcessorSpec(wakeup_cycles=10_000.0)
        ts = TaskSet([Task(name="a", wcet=50.0, period=100.0, priority=0)])
        result = simulate(ts, LpfpsScheduler(use_dvs=False), spec=spec,
                          duration=1_000.0)
        assert result.sleep_entries == 0
        assert result.energy.idle > 0.0


class TestDeterminism:
    def test_identical_runs_bitwise_equal(self):
        ts = rate_monotonic(TaskSet([
            Task(name="a", wcet=10.0, period=100.0, bcet=2.0),
            Task(name="b", wcet=30.0, period=300.0, bcet=6.0),
        ]))
        from repro.tasks.generation import GaussianModel

        results = [
            simulate(ts, LpfpsScheduler(), execution_model=GaussianModel(),
                     duration=30_000.0, seed=9)
            for _ in range(2)
        ]
        assert results[0].energy.total == results[1].energy.total
        assert results[0].speed_changes == results[1].speed_changes
        assert results[0].sleep_entries == results[1].sleep_entries
