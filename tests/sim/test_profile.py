"""Unit and property tests for closed-form work integration."""

import math

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.sim.profile import Ramp, constant_time_to_complete, constant_work


class TestConstant:
    def test_work(self):
        assert constant_work(10.0, 30.0, 0.5) == pytest.approx(10.0)

    def test_reversed_segment_rejected(self):
        with pytest.raises(ValueError):
            constant_work(30.0, 10.0, 0.5)

    def test_time_to_complete(self):
        assert constant_time_to_complete(100.0, 20.0, 0.5) == pytest.approx(140.0)

    def test_zero_remaining_is_now(self):
        assert constant_time_to_complete(100.0, 0.0, 0.5) == 100.0

    def test_stalled_is_infinite(self):
        assert constant_time_to_complete(100.0, 1.0, 0.0) == math.inf


class TestRamp:
    def _ramp(self):
        # 0.3 -> 1.0 over [100, 110] (rho = 0.07).
        return Ramp(start_time=100.0, end_time=110.0, from_speed=0.3, to_speed=1.0)

    def test_speed_at(self):
        ramp = self._ramp()
        assert ramp.speed_at(100.0) == pytest.approx(0.3)
        assert ramp.speed_at(105.0) == pytest.approx(0.65)
        assert ramp.speed_at(110.0) == pytest.approx(1.0)
        assert ramp.speed_at(50.0) == pytest.approx(0.3)
        assert ramp.speed_at(200.0) == pytest.approx(1.0)

    def test_work_inside_ramp(self):
        assert self._ramp().work_between(100.0, 110.0) == pytest.approx(6.5)

    def test_work_spanning_before_and_after(self):
        ramp = self._ramp()
        # 10 us at 0.3 before + 6.5 in ramp + 10 us at 1.0 after.
        assert ramp.work_between(90.0, 120.0) == pytest.approx(3.0 + 6.5 + 10.0)

    def test_work_additivity(self):
        ramp = self._ramp()
        total = ramp.work_between(95.0, 118.0)
        split = ramp.work_between(95.0, 104.0) + ramp.work_between(104.0, 118.0)
        assert total == pytest.approx(split, rel=1e-12)

    def test_zero_length_ramp(self):
        ramp = Ramp(start_time=5.0, end_time=5.0, from_speed=0.5, to_speed=1.0)
        assert ramp.slope == 0.0
        assert ramp.work_between(0.0, 10.0) > 0.0

    def test_reversed_ramp_rejected(self):
        with pytest.raises(ValueError):
            Ramp(start_time=10.0, end_time=5.0, from_speed=0.5, to_speed=1.0)


class TestRampCompletion:
    def test_completes_within_upward_ramp(self):
        ramp = Ramp(start_time=0.0, end_time=10.0, from_speed=0.3, to_speed=1.0)
        t = ramp.time_to_complete(0.0, 3.25)  # half the ramp work (6.5)
        assert 0.0 < t < 10.0
        assert ramp.work_between(0.0, t) == pytest.approx(3.25, rel=1e-9)

    def test_completes_within_downward_ramp(self):
        ramp = Ramp(start_time=0.0, end_time=10.0, from_speed=1.0, to_speed=0.3)
        t = ramp.time_to_complete(0.0, 3.0)
        assert 0.0 < t < 10.0
        assert ramp.work_between(0.0, t) == pytest.approx(3.0, rel=1e-9)

    def test_overflows_into_constant_tail(self):
        ramp = Ramp(start_time=0.0, end_time=10.0, from_speed=0.3, to_speed=1.0)
        # Ramp supplies 6.5; 4 more at speed 1.0 -> t = 14.
        assert ramp.time_to_complete(0.0, 10.5) == pytest.approx(14.0)

    def test_starting_mid_ramp(self):
        ramp = Ramp(start_time=0.0, end_time=10.0, from_speed=0.3, to_speed=1.0)
        work_tail = ramp.work_between(5.0, 10.0)
        t = ramp.time_to_complete(5.0, work_tail)
        assert t == pytest.approx(10.0, rel=1e-9)

    def test_after_ramp_is_constant(self):
        ramp = Ramp(start_time=0.0, end_time=10.0, from_speed=0.3, to_speed=1.0)
        assert ramp.time_to_complete(20.0, 5.0) == pytest.approx(25.0)

    def test_zero_remaining(self):
        ramp = Ramp(start_time=0.0, end_time=10.0, from_speed=0.3, to_speed=1.0)
        assert ramp.time_to_complete(3.0, 0.0) == 3.0

    @given(
        s0=st.floats(0.05, 1.0),
        s1=st.floats(0.05, 1.0),
        duration=st.floats(0.1, 100.0),
        fraction=st.floats(0.01, 0.99),
    )
    @settings(max_examples=200, deadline=None)
    def test_property_completion_inverts_work(self, s0, s1, duration, fraction):
        """time_to_complete is the inverse of work_between."""
        ramp = Ramp(start_time=0.0, end_time=duration, from_speed=s0, to_speed=s1)
        ramp_work = ramp.work_between(0.0, duration)
        remaining = fraction * ramp_work
        t = ramp.time_to_complete(0.0, remaining)
        assert 0.0 <= t <= duration + 1e-9
        assert ramp.work_between(0.0, t) == pytest.approx(remaining, rel=1e-6)

    @given(
        s0=st.floats(0.05, 1.0),
        s1=st.floats(0.05, 1.0),
        duration=st.floats(0.1, 100.0),
        extra=st.floats(0.01, 50.0),
    )
    @settings(max_examples=100, deadline=None)
    def test_property_overflow_consistency(self, s0, s1, duration, extra):
        ramp = Ramp(start_time=0.0, end_time=duration, from_speed=s0, to_speed=s1)
        ramp_work = ramp.work_between(0.0, duration)
        t = ramp.time_to_complete(0.0, ramp_work + extra)
        assert t == pytest.approx(duration + extra / s1, rel=1e-9)
