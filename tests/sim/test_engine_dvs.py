"""Engine behaviour for speed scaling: ramps, work integration, energy."""

import pytest

from repro.power.frequency import FrequencyGrid
from repro.power.model import PowerModel
from repro.power.processor import ProcessorSpec
from repro.power.transitions import TransitionModel
from repro.sim.dispatch import Scheduler, fixed_priority_dispatch
from repro.sim.engine import simulate
from repro.sim.events import Decision
from repro.tasks.task import Task, TaskSet


class FixedSpeedFps(Scheduler):
    """Test helper: FP dispatch at one constant speed ratio."""

    name = "fixed-speed"

    def __init__(self, speed: float):
        self.speed = speed

    def schedule(self, kernel, event):
        active = fixed_priority_dispatch(kernel)
        return Decision(run=active, speed_target=self.speed)


def _one_task(wcet=10.0, period=100.0):
    return TaskSet([Task(name="t", wcet=wcet, period=period, priority=0)],
                   name="one")


def _spec(rho=None, executes=True):
    return ProcessorSpec(
        grid=FrequencyGrid(f_max=100.0, f_min=8.0, step=None),
        power=PowerModel(),
        transition=TransitionModel(rho=rho, executes_during_change=executes),
        wakeup_cycles=0.0,
    )


class TestInstantSpeedChange:
    def test_execution_stretches_by_inverse_speed(self):
        result = simulate(
            _one_task(), FixedSpeedFps(0.5), spec=_spec(),
            duration=100.0, record_trace=True,
        )
        runs = [s for s in result.trace.segments if s.state == "run"]
        assert runs[0].end == pytest.approx(20.0)

    def test_active_energy_uses_reduced_power(self):
        spec = _spec()
        result = simulate(
            _one_task(), FixedSpeedFps(0.5), spec=spec, duration=100.0
        )
        expected = spec.power.active_power(0.5) * 20.0
        assert result.energy.active == pytest.approx(expected, rel=1e-9)

    def test_energy_per_job_decreases_with_speed(self):
        """The quadratic-voltage argument: slower is cheaper per job."""
        spec = _spec()
        powers = []
        for speed in (1.0, 0.75, 0.5, 0.25):
            r = simulate(_one_task(), FixedSpeedFps(speed), spec=spec,
                         duration=100.0)
            powers.append(r.energy.active)
        assert powers == sorted(powers, reverse=True)


class TestRampedSpeedChange:
    def test_ramp_down_work_conservation(self):
        """With rho=0.07, 1.0 -> 0.5 takes 50/7 us doing (0.75)(50/7) work;
        the 10-unit job finishes at ramp_end + remaining/0.5."""
        spec = _spec(rho=0.07)
        result = simulate(
            _one_task(), FixedSpeedFps(0.5), spec=spec,
            duration=100.0, record_trace=True,
        )
        ramp_duration = 0.5 / 0.07
        ramp_work = 0.75 * ramp_duration
        expected_end = ramp_duration + (10.0 - ramp_work) / 0.5
        completion = result.trace.events_of_kind("completion")[0]
        assert completion.time == pytest.approx(expected_end, rel=1e-9)

    def test_ramp_energy_accounted_separately(self):
        spec = _spec(rho=0.07)
        result = simulate(
            _one_task(), FixedSpeedFps(0.5), spec=spec, duration=100.0
        )
        assert result.energy.ramp > 0.0
        ramp_duration = 0.5 / 0.07
        lo = spec.power.active_power(0.5) * ramp_duration
        hi = spec.power.active_power(1.0) * ramp_duration
        assert lo < result.energy.ramp < hi

    def test_stalled_transition_does_no_work(self):
        """executes_during_change=False: the job waits out the ramp."""
        spec = _spec(rho=0.07, executes=False)
        result = simulate(
            _one_task(), FixedSpeedFps(0.5), spec=spec,
            duration=100.0, record_trace=True,
        )
        ramp_duration = 0.5 / 0.07
        expected_end = ramp_duration + 10.0 / 0.5
        completion = result.trace.events_of_kind("completion")[0]
        assert completion.time == pytest.approx(expected_end, rel=1e-9)

    def test_job_completing_inside_ramp(self):
        """A short job ends mid-ramp; the quadratic solver must place it."""
        spec = _spec(rho=0.07)
        result = simulate(
            _one_task(wcet=2.0), FixedSpeedFps(0.5), spec=spec,
            duration=100.0, record_trace=True,
        )
        completion = result.trace.events_of_kind("completion")[0]
        # Solve 1.0*x - 0.07*x^2/2 = 2.0 -> x = (1 - sqrt(0.72))/0.07.
        assert completion.time == pytest.approx(2.16388, abs=1e-4)

    def test_speed_changes_counted(self):
        result = simulate(
            _one_task(), FixedSpeedFps(0.5), spec=_spec(rho=0.07), duration=300.0
        )
        assert result.speed_changes >= 1


class TestWorkConservation:
    @pytest.mark.parametrize("speed", [1.0, 0.66, 0.5, 0.31])
    def test_all_demand_executed(self, speed):
        """Sum of executed work equals jobs x WCET regardless of speed."""
        result = simulate(
            _one_task(), FixedSpeedFps(speed), spec=_spec(rho=0.07),
            duration=1000.0,
        )
        assert result.jobs_completed == 10
        assert not result.missed

    def test_quantized_grid_rounds_decision_up(self):
        """A discrete grid never runs slower than requested."""
        spec = ProcessorSpec(
            grid=FrequencyGrid(f_max=100.0, f_min=8.0, step=10.0),
            power=PowerModel(),
            transition=TransitionModel(rho=None),
            wakeup_cycles=0.0,
        )
        assert spec.quantized_speed(0.55) == pytest.approx(0.58)
