"""Unit tests for trace recording and queries."""

import pytest

from repro.sim.trace import PointEvent, Segment, TraceRecorder


def _seg(start, end, state="run", job="t#0", task="t", s0=1.0, s1=1.0):
    return Segment(start=start, end=end, state=state, job=job, task=task,
                   speed_start=s0, speed_end=s1)


class TestSegmentMerging:
    def test_contiguous_identical_segments_merge(self):
        trace = TraceRecorder()
        trace.record_segment(_seg(0.0, 10.0))
        trace.record_segment(_seg(10.0, 20.0))
        assert len(trace.segments) == 1
        assert trace.segments[0].end == 20.0

    def test_different_jobs_do_not_merge(self):
        trace = TraceRecorder()
        trace.record_segment(_seg(0.0, 10.0, job="a#0", task="a"))
        trace.record_segment(_seg(10.0, 20.0, job="b#0", task="b"))
        assert len(trace.segments) == 2

    def test_ramping_segments_do_not_merge(self):
        trace = TraceRecorder()
        trace.record_segment(_seg(0.0, 10.0, s0=1.0, s1=0.5))
        trace.record_segment(_seg(10.0, 20.0, s0=0.5, s1=0.5))
        assert len(trace.segments) == 2

    def test_zero_duration_dropped(self):
        trace = TraceRecorder()
        trace.record_segment(_seg(5.0, 5.0))
        assert trace.segments == []


class TestQueries:
    def _trace(self):
        trace = TraceRecorder()
        trace.record_segment(_seg(0.0, 10.0, job="a#0", task="a"))
        trace.record_segment(_seg(10.0, 20.0, state="idle", job=None, task=None))
        trace.record_segment(_seg(20.0, 30.0, state="sleep", job=None, task=None))
        trace.record_segment(_seg(30.0, 40.0, job="b#0", task="b"))
        return trace

    def test_segments_for_task(self):
        segs = self._trace().segments_for_task("a")
        assert len(segs) == 1 and segs[0].end == 10.0

    def test_busy_intervals(self):
        assert self._trace().busy_intervals() == [(0.0, 10.0), (30.0, 40.0)]

    def test_idle_intervals_merge_idle_and_sleep(self):
        assert self._trace().idle_intervals() == [(10.0, 30.0)]

    def test_state_at(self):
        trace = self._trace()
        assert trace.state_at(5.0).task == "a"
        assert trace.state_at(25.0).state == "sleep"
        assert trace.state_at(99.0) is None

    def test_events_of_kind(self):
        trace = TraceRecorder()
        trace.record_event(1.0, "release", "a#0")
        trace.record_event(2.0, "completion", "a#0")
        trace.record_event(3.0, "release", "b#0")
        releases = trace.events_of_kind("release")
        assert [e.detail for e in releases] == ["a#0", "b#0"]
