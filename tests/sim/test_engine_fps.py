"""Engine behaviour under plain fixed-priority scheduling."""

import pytest

from repro.errors import ConfigurationError, DeadlineMissError
from repro.schedulers.fps import FpsScheduler
from repro.sim.engine import Simulator, simulate
from repro.tasks.generation import UniformModel
from repro.tasks.priority import rate_monotonic
from repro.tasks.task import Task, TaskSet
from repro.workloads.example_dac99 import example_taskset


class TestFigure2aSchedule:
    """The exact Figure 2(a) timeline, every job at WCET."""

    @pytest.fixture(autouse=True)
    def _run(self):
        self.result = simulate(
            example_taskset(), FpsScheduler(), duration=400.0, record_trace=True
        )

    def test_run_segments(self):
        expected = [
            (0.0, 10.0, "tau1"), (10.0, 30.0, "tau2"), (30.0, 50.0, "tau3"),
            (50.0, 60.0, "tau1"), (60.0, 80.0, "tau3"), (80.0, 100.0, "tau2"),
            (100.0, 110.0, "tau1"), (110.0, 150.0, "tau3"),
            (150.0, 160.0, "tau1"), (160.0, 180.0, "tau2"),
        ]
        runs = [
            (s.start, s.end, s.task)
            for s in self.result.trace.segments
            if s.state == "run"
        ][: len(expected)]
        assert runs == expected

    def test_idle_interval_180_200(self):
        assert (180.0, 200.0) in self.result.trace.idle_intervals()

    def test_preemption_of_tau3_at_50(self):
        tau3 = self.result.trace.segments_for_task("tau3")
        assert tau3[0].end == 50.0 and tau3[1].start == 60.0
        assert self.result.preemptions >= 1

    def test_no_misses(self):
        assert not self.result.missed

    def test_job_count_over_hyperperiod(self):
        # 8 + 5 + 4 releases; the tau3 job finishing exactly at t=400 is
        # still in flight when the horizon closes.
        total = sum(s.jobs_released for s in self.result.task_stats.values())
        assert total == 17


class TestEnergyAccounting:
    def test_fps_energy_closed_form(self):
        """busy time at full power + idle time at 20%."""
        result = simulate(example_taskset(), FpsScheduler(), duration=400.0)
        busy = 2 * (8 * 10.0 + 5 * 20.0 + 4 * 40.0) / 2  # = 340 us of work
        idle = 400.0 - busy
        assert result.energy.active == pytest.approx(busy)
        assert result.energy.idle == pytest.approx(0.2 * idle)
        assert result.average_power == pytest.approx((busy + 0.2 * idle) / 400.0)

    def test_energy_scales_with_duration(self):
        r1 = simulate(example_taskset(), FpsScheduler(), duration=400.0)
        r2 = simulate(example_taskset(), FpsScheduler(), duration=4000.0)
        assert r2.average_power == pytest.approx(r1.average_power, rel=1e-9)


class TestExecutionModels:
    def test_same_seed_same_power(self):
        ts = example_taskset().with_bcet_ratio(0.4)
        a = simulate(ts, FpsScheduler(), execution_model=UniformModel(), seed=5)
        b = simulate(ts, FpsScheduler(), execution_model=UniformModel(), seed=5)
        assert a.average_power == b.average_power

    def test_different_seed_different_power(self):
        ts = example_taskset().with_bcet_ratio(0.4)
        a = simulate(ts, FpsScheduler(), execution_model=UniformModel(), seed=5)
        b = simulate(ts, FpsScheduler(), execution_model=UniformModel(), seed=6)
        assert a.average_power != b.average_power

    def test_shorter_executions_use_less_power(self):
        full = simulate(example_taskset(), FpsScheduler())
        varied = simulate(
            example_taskset().with_bcet_ratio(0.2),
            FpsScheduler(),
            execution_model=UniformModel(),
            seed=1,
        )
        assert varied.average_power < full.average_power


class TestDeadlineHandling:
    def _overloaded(self):
        # U = 1.1: tau2 must eventually miss.
        return rate_monotonic(TaskSet([
            Task(name="t1", wcet=30.0, period=50.0),
            Task(name="t2", wcet=50.0, period=100.0),
        ]))

    def test_raise_mode(self):
        with pytest.raises(DeadlineMissError):
            simulate(self._overloaded(), FpsScheduler(), duration=1000.0)

    def test_record_mode(self):
        result = simulate(
            self._overloaded(), FpsScheduler(), duration=1000.0, on_miss="record"
        )
        assert result.missed
        assert all(m.task_name == "t2" for m in result.deadline_misses)

    def test_invalid_on_miss(self):
        with pytest.raises(ConfigurationError):
            Simulator(example_taskset(), FpsScheduler(), on_miss="explode")


class TestEngineConfiguration:
    def test_trace_disabled_by_default(self):
        assert simulate(example_taskset(), FpsScheduler()).trace is None

    def test_duration_defaults_to_hyperperiod(self):
        result = simulate(example_taskset(), FpsScheduler())
        assert result.duration == 400.0

    def test_nonpositive_duration_rejected(self):
        with pytest.raises(ConfigurationError):
            simulate(example_taskset(), FpsScheduler(), duration=0.0)

    def test_missing_priorities_rejected(self):
        ts = TaskSet([Task(name="a", wcet=1.0, period=10.0)])
        from repro.errors import InvalidTaskSetError

        with pytest.raises(InvalidTaskSetError):
            simulate(ts, FpsScheduler())

    def test_phase_offsets_respected(self):
        ts = TaskSet([
            Task(name="a", wcet=5.0, period=50.0, phase=20.0, priority=0),
        ])
        result = simulate(ts, FpsScheduler(), duration=100.0, record_trace=True)
        runs = [s for s in result.trace.segments if s.state == "run"]
        assert runs[0].start == 20.0
        assert runs[1].start == 70.0
