"""Differential suite: the fast path must match the exact loop, provably.

``simulate_fast`` carries a two-tier correctness contract:

* ``exact=True`` (the default) never fast-forwards — its results are
  bit-identical to ``simulate`` by construction, pinned here through the
  full traced digest.
* ``exact=False`` may extrapolate whole hyperperiods.  Integer counters
  (jobs, misses, preemptions, context switches, speed/sleep transitions)
  must still be *exactly* equal; float accumulators (energy buckets,
  residency, response-time totals) are re-associated sums — ``base +
  m x delta`` instead of event-by-event addition — and must agree within
  the audited ``FLOAT_RTOL``/``FLOAT_ATOL``.

Every registry scheduler runs against the bundled workloads through both
paths.  Cells that cannot safely fast-forward — non-converging signatures
(lpfps on example: ULP ramp drift), incommensurate tick grids (past),
horizons too short for detection, nondeterministic execution models —
must fall back to the exact loop and stay bit-identical.
"""

import math

import pytest

from repro.errors import ConfigurationError
from repro.schedulers.registry import available_schedulers, make_scheduler
from repro.sim import (
    FLOAT_ATOL,
    FLOAT_RTOL,
    HAVE_NUMPY,
    ReleaseTable,
    digest_metrics,
    simulate,
    simulate_fast,
)
from repro.sim.recording import digest_result
from repro.tasks.generation import GaussianModel, WcetModel
from repro.workloads.registry import get_workload

ALL_NAMES = available_schedulers()

#: (workload, duration_us): long enough for detection on both bundled
#: small-hyperperiod workloads (example H=400 µs, cnc H=7200 µs).
GRIDS = [("example", 8_000.0), ("cnc", 144_000.0)]

#: Integer-valued digest keys that must match exactly even when floats
#: are allowed to differ within tolerance.
INT_KEYS = (
    "jobs_completed",
    "deadline_misses",
    "context_switches",
    "preemptions",
    "speed_changes",
    "sleep_entries",
)
TASK_INT_KEYS = ("jobs_released", "jobs_completed", "deadline_misses", "preemptions")


def _run_pair(name, workload, duration, **kwargs):
    taskset = get_workload(workload).prioritized().with_bcet_ratio(0.5)
    model = kwargs.pop("execution_model", WcetModel())
    exact = simulate(
        taskset,
        make_scheduler(name),
        execution_model=model,
        duration=duration,
        seed=1,
        on_miss="record",
    )
    fast = simulate_fast(
        taskset,
        make_scheduler(name),
        execution_model=model,
        duration=duration,
        seed=1,
        on_miss="record",
        **kwargs,
    )
    return exact, fast


def _close(a: str, b: str) -> bool:
    return math.isclose(float(a), float(b), rel_tol=FLOAT_RTOL, abs_tol=FLOAT_ATOL)


def assert_equivalent(exact, fast):
    """Ints exactly equal; floats within the audited tolerance."""
    de, df = digest_metrics(exact), digest_metrics(fast)
    for key in INT_KEYS:
        assert de[key] == df[key], f"{key}: {de[key]} != {df[key]}"
    for bucket in de["energy"]:
        assert _close(de["energy"][bucket], df["energy"][bucket]), (
            f"energy.{bucket}: {de['energy'][bucket]} vs {df['energy'][bucket]}"
        )
    assert _close(de["energy_total"], df["energy_total"])
    assert set(de["speed_residency"]) == set(df["speed_residency"])
    for speed in de["speed_residency"]:
        assert _close(de["speed_residency"][speed], df["speed_residency"][speed])
    assert set(de["task_stats"]) == set(df["task_stats"])
    for task in de["task_stats"]:
        se, sf = de["task_stats"][task], df["task_stats"][task]
        for key in TASK_INT_KEYS:
            assert se[key] == sf[key], f"{task}.{key}: {se[key]} != {sf[key]}"
        # worst_response is a running max over completion - release
        # subtractions whose ULP noise varies with the absolute time at
        # which they happen; a skipped middle cycle can hold the exact
        # run's max.  total_response is a re-associated accumulator.
        # Both are float-tolerance territory, not bit-exact.
        assert _close(se["worst_response"], sf["worst_response"])
        assert _close(se["total_response"], sf["total_response"])


class TestRegistryWideEquivalence:
    """Every scheduler x every bundled small workload, both paths."""

    @pytest.mark.parametrize("workload,duration", GRIDS)
    @pytest.mark.parametrize("name", [n for n in ALL_NAMES if n != "yds"])
    def test_fast_matches_exact(self, name, workload, duration):
        exact, fast = _run_pair(name, workload, duration, exact=False)
        assert fast.metadata["execution_path"] in (
            "fast-forward",
            "exact-fallback",
        )
        assert_equivalent(exact, fast)

    @pytest.mark.parametrize("workload,duration", GRIDS)
    def test_yds_parity(self, workload, duration):
        # yds raises the same error through either path (it needs its
        # offline schedule precomputed), or completes identically where
        # it can run; either way the two paths must agree.
        taskset = get_workload(workload).prioritized().with_bcet_ratio(0.5)
        outcomes = []
        for run in (simulate, simulate_fast):
            try:
                result = run(
                    taskset,
                    make_scheduler("yds"),
                    execution_model=WcetModel(),
                    duration=duration,
                    seed=1,
                    on_miss="record",
                )
                outcomes.append(("ok", result.jobs_completed))
            except Exception as exc:  # noqa: BLE001 - parity check
                outcomes.append(("error", type(exc).__name__))
        assert outcomes[0] == outcomes[1]


class TestFastForwardEngages:
    """The detector must actually skip cycles where it is supposed to."""

    @pytest.mark.parametrize(
        "name,workload,duration",
        [
            ("fps", "example", 8_000.0),
            ("fps", "cnc", 144_000.0),
            ("lpfps", "cnc", 144_000.0),
            ("static-fps", "cnc", 144_000.0),
            ("ccedf", "example", 8_000.0),
            ("jcl", "example", 8_000.0),
        ],
    )
    def test_cell_fast_forwards(self, name, workload, duration):
        _, fast = _run_pair(name, workload, duration, exact=False)
        assert fast.metadata["execution_path"] == "fast-forward"
        info = fast.metadata["fastpath"]
        assert info["cycles_skipped"] >= 1
        assert info["hyperperiod_us"] > 0

    def test_fps_is_bit_identical_through_the_jump(self):
        # Pure fixed-priority with no DVS state: the jump is exact even
        # for floats, so the full metrics digest matches bit-for-bit.
        exact, fast = _run_pair("fps", "cnc", 144_000.0, exact=False)
        assert fast.metadata["execution_path"] == "fast-forward"
        assert digest_metrics(exact) == digest_metrics(fast)


class TestExactFallback:
    """Cells that cannot safely jump must run the exact loop, identically."""

    def test_lpfps_example_never_converges(self):
        # ULP-level ramp-time drift keeps the repr-exact signature from
        # ever repeating: the detector must refuse, not jump wrongly.
        exact, fast = _run_pair("lpfps", "example", 8_000.0, exact=False)
        assert fast.metadata["execution_path"] == "exact-fallback"
        assert "steady state" in fast.metadata["fastpath_fallback"]
        assert digest_metrics(exact) == digest_metrics(fast)

    def test_past_tick_grid_never_converges(self):
        # PAST's 5000 µs tick is incommensurate with the hyperperiod
        # grid, so its signature (tick phase) never repeats at crossings.
        exact, fast = _run_pair("past", "cnc", 144_000.0, exact=False)
        assert fast.metadata["execution_path"] == "exact-fallback"
        assert digest_metrics(exact) == digest_metrics(fast)

    def test_hyperperiod_boundary_horizon(self):
        # Horizon an exact multiple of H: the converged detector must
        # leave the final partial-cycle replay consistent (no cycle
        # double-count, no boundary event loss).
        exact, fast = _run_pair("fps", "cnc", 20 * 7_200.0, exact=False)
        assert fast.metadata["execution_path"] == "fast-forward"
        assert_equivalent(exact, fast)

    def test_short_horizon_falls_back(self):
        # Too few hyperperiods for warm-up + detection: ineligible, and
        # trivially identical.
        exact, fast = _run_pair("fps", "cnc", 2 * 7_200.0, exact=False)
        assert fast.metadata["execution_path"] == "exact-fallback"
        assert digest_metrics(exact) == digest_metrics(fast)

    def test_big_hyperperiod_workload_falls_back(self):
        # ins has a 5-second hyperperiod; a 100 ms horizon cannot hold
        # a single cycle, let alone detection.
        exact, fast = _run_pair("lpfps", "ins", 100_000.0, exact=False)
        assert fast.metadata["execution_path"] == "exact-fallback"
        assert digest_metrics(exact) == digest_metrics(fast)

    def test_nondeterministic_model_is_ineligible(self):
        # GaussianModel draws from the RNG: extrapolation would replay
        # one cycle's draws forever.  Must refuse and stay identical.
        exact, fast = _run_pair(
            "lpfps",
            "cnc",
            144_000.0,
            exact=False,
            execution_model=GaussianModel(),
        )
        assert fast.metadata["execution_path"] == "exact-fallback"
        assert digest_metrics(exact) == digest_metrics(fast)


class TestExactModeNeverJumps:
    """``exact=True`` (the default) must refuse to fast-forward at all."""

    def test_default_is_exact(self):
        _, fast = _run_pair("fps", "cnc", 144_000.0)
        assert fast.metadata["execution_path"] == "exact"

    def test_exact_traced_digest_is_bit_identical(self):
        taskset = get_workload("example").prioritized().with_bcet_ratio(0.5)
        kwargs = dict(
            execution_model=WcetModel(),
            duration=8_000.0,
            seed=1,
            on_miss="record",
            record_trace=True,
        )
        reference = simulate(taskset, make_scheduler("lpfps"), **kwargs)
        result = simulate_fast(taskset, make_scheduler("lpfps"), **kwargs)
        assert digest_result(reference) == digest_result(result)

    def test_bad_knobs_raise(self):
        taskset = get_workload("example").prioritized()
        with pytest.raises(ConfigurationError):
            simulate_fast(taskset, make_scheduler("fps"), warmup_cycles=0)
        with pytest.raises(ConfigurationError):
            simulate_fast(taskset, make_scheduler("fps"), max_detect_cycles=1)


class TestReleaseTable:
    """The SoA batch release generator, both backends."""

    def test_counts_match_analytic(self):
        taskset = get_workload("cnc").prioritized()
        table = ReleaseTable.from_taskset(taskset, 72_000.0)
        counts = table.counts()
        for task in taskset:
            expected = math.ceil((72_000.0 - task.phase) / task.period)
            assert counts[task.name] == max(0, expected)
        assert len(table) == sum(counts.values())

    def test_backends_agree(self):
        taskset = get_workload("cnc").prioritized()
        fast = ReleaseTable.from_taskset(taskset, 36_000.0)
        slow = ReleaseTable.from_taskset(taskset, 36_000.0, force_python=True)
        assert slow.backend == "python"
        assert list(fast) == list(slow)
        assert fast.counts() == slow.counts()

    def test_backend_reflects_numpy_availability(self):
        table = ReleaseTable.from_taskset(get_workload("example").prioritized(), 800.0)
        assert table.backend == ("numpy" if HAVE_NUMPY else "python")

    def test_window_and_count(self):
        taskset = get_workload("example").prioritized()
        table = ReleaseTable.from_taskset(taskset, 1_200.0)
        window = table.window(400.0, 800.0)
        assert all(400.0 <= t < 800.0 for t, _, _ in window)
        assert len(window) == table.count_in(400.0, 800.0)

    def test_non_finite_horizon_rejected(self):
        taskset = get_workload("example").prioritized()
        with pytest.raises(ConfigurationError):
            ReleaseTable.from_taskset(taskset, float("inf"))
