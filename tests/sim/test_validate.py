"""Tests for the trace invariant checker."""

import pytest

from repro.core.lpfps import LpfpsScheduler
from repro.power.processor import ProcessorSpec
from repro.schedulers.fps import FpsScheduler
from repro.sim.engine import simulate
from repro.sim.trace import Segment, TraceRecorder
from repro.sim.validate import assert_valid, validate_trace
from repro.workloads.example_dac99 import example_taskset


def _trace(segments, events=()):
    trace = TraceRecorder()
    for seg in segments:
        trace.record_segment(seg)
    for time, kind, detail in events:
        trace.record_event(time, kind, detail)
    return trace


def _run_seg(start, end, job="a#0", task="a", s0=1.0, s1=1.0):
    return Segment(start=start, end=end, state="run", job=job, task=task,
                   speed_start=s0, speed_end=s1)


class TestCleanTraces:
    def test_fps_on_table1_is_clean(self):
        result = simulate(example_taskset(), FpsScheduler(), duration=400.0,
                          record_trace=True)
        assert validate_trace(result.trace, example_taskset()) == []

    def test_lpfps_on_table1_is_clean(self):
        result = simulate(example_taskset(), LpfpsScheduler(),
                          spec=ProcessorSpec.ideal(), duration=400.0,
                          record_trace=True)
        assert_valid(result.trace, example_taskset())

    def test_lpfps_with_ramps_is_clean(self):
        result = simulate(example_taskset(), LpfpsScheduler(), duration=400.0,
                          record_trace=True)
        assert_valid(result.trace, example_taskset())


class TestViolationDetection:
    def test_overlapping_segments(self):
        trace = _trace(
            [_run_seg(0.0, 10.0), _run_seg(5.0, 15.0, job="b#0", task="b")],
            [(0.0, "release", "a#0"), (0.0, "release", "b#0")],
        )
        violations = validate_trace(trace)
        assert any(v.invariant == "continuity" for v in violations)

    def test_run_before_release(self):
        trace = _trace([_run_seg(0.0, 10.0)], [(5.0, "release", "a#0")])
        violations = validate_trace(trace)
        assert any(v.invariant == "causality" for v in violations)

    def test_run_without_release(self):
        trace = _trace([_run_seg(0.0, 10.0)])
        violations = validate_trace(trace)
        assert any(v.invariant == "causality" for v in violations)

    def test_double_completion(self):
        trace = _trace(
            [_run_seg(0.0, 10.0)],
            [(0.0, "release", "a#0"), (5.0, "completion", "a#0"),
             (10.0, "completion", "a#0")],
        )
        violations = validate_trace(trace)
        assert any(v.invariant == "single-completion" for v in violations)

    def test_run_after_completion(self):
        trace = _trace(
            [_run_seg(0.0, 5.0), _run_seg(8.0, 10.0)],
            [(0.0, "release", "a#0"), (5.0, "completion", "a#0")],
        )
        violations = validate_trace(trace)
        assert any(v.invariant == "single-completion" for v in violations)

    def test_speed_out_of_bounds(self):
        trace = _trace(
            [_run_seg(0.0, 10.0, s0=1.5, s1=1.5)],
            [(0.0, "release", "a#0")],
        )
        violations = validate_trace(trace)
        assert any(v.invariant == "speed-bounds" for v in violations)

    def test_priority_inversion(self):
        ts = example_taskset()
        # tau3 runs while a released, unfinished tau1 job is pending.
        trace = _trace(
            [_run_seg(100.0, 140.0, job="tau3#0", task="tau3")],
            [(0.0, "release", "tau3#0"), (0.0, "release", "tau1#0")],
        )
        violations = validate_trace(trace, ts)
        assert any(v.invariant == "fixed-priority" for v in violations)

    def test_slowdown_with_pending_job(self):
        trace = _trace(
            [_run_seg(0.0, 40.0, job="a#0", task="a", s0=0.5, s1=0.5)],
            [(0.0, "release", "a#0"), (10.0, "release", "b#0")],
        )
        violations = validate_trace(trace)
        assert any(v.invariant == "slowdown-exclusive" for v in violations)

    def test_assert_valid_raises_with_summary(self):
        trace = _trace([_run_seg(0.0, 10.0)])
        with pytest.raises(AssertionError, match="causality"):
            assert_valid(trace)
