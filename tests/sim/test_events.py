"""Unit tests for Decision/SleepRequest semantics."""

import pytest

from repro.sim.events import KEEP, NO_CHANGE, Decision, SleepRequest
from repro.tasks.job import Job
from repro.tasks.task import Task


def _job():
    task = Task(name="t", wcet=10.0, period=100.0, priority=1)
    return Job(task, index=0, release_time=0.0, execution_time=10.0)


class TestDecision:
    def test_default_keeps_active(self):
        assert Decision().keeps_active
        assert NO_CHANGE.keeps_active

    def test_explicit_idle_does_not_keep(self):
        assert not Decision(run=None).keeps_active

    def test_job_decision(self):
        job = _job()
        d = Decision(run=job)
        assert d.run is job
        assert not d.keeps_active

    def test_sleep_with_job_rejected(self):
        with pytest.raises(ValueError):
            Decision(run=_job(), sleep=SleepRequest(until=100.0))

    def test_sleep_with_idle_allowed(self):
        d = Decision(run=None, sleep=SleepRequest(until=100.0))
        assert d.sleep.until == 100.0

    def test_sleep_with_keep_allowed(self):
        # KEEP + sleep is legal: the engine validates no job is active.
        Decision(sleep=SleepRequest(until=100.0))

    def test_speed_target_bounds(self):
        Decision(speed_target=0.5)
        Decision(speed_target=1.0)
        with pytest.raises(ValueError):
            Decision(speed_target=0.0)
        with pytest.raises(ValueError):
            Decision(speed_target=1.5)


class TestSleepRequest:
    def test_defaults(self):
        req = SleepRequest()
        assert req.until is None
        assert req.start_at is None

    def test_threshold_style(self):
        req = SleepRequest(until=None, start_at=150.0)
        assert req.start_at == 150.0
