"""Tests for the trace-based energy audit."""

import pytest

from repro.core.lpfps import LpfpsScheduler
from repro.power.processor import ProcessorSpec
from repro.schedulers.fps import FpsScheduler
from repro.schedulers.powerdown import TimerPowerDownFps
from repro.sim.audit import audit_energy, recompute_energy
from repro.sim.engine import simulate
from repro.sim.metrics import EnergyBreakdown
from repro.tasks.generation import GaussianModel
from repro.workloads.example_dac99 import example_taskset
from repro.workloads.registry import get_workload


def _audit(scheduler, spec=None, **kwargs):
    spec = spec if spec is not None else ProcessorSpec.arm8()
    result = simulate(
        example_taskset(), scheduler, spec=spec, record_trace=True,
        on_miss="record", **kwargs,
    )
    return audit_energy(result.trace, spec, result.energy, tolerance=1e-4)


class TestAuditConsistency:
    def test_fps(self):
        audit = _audit(FpsScheduler(), duration=4_000.0)
        assert audit.consistent, audit.summary()

    def test_lpfps_with_ramps(self):
        audit = _audit(LpfpsScheduler(), duration=4_000.0)
        assert audit.consistent, audit.summary()

    def test_lpfps_ideal(self):
        audit = _audit(LpfpsScheduler(), spec=ProcessorSpec.ideal(),
                       duration=4_000.0)
        assert audit.consistent, audit.summary()

    def test_powerdown_with_wakeups(self):
        audit = _audit(TimerPowerDownFps(), duration=4_000.0)
        assert audit.consistent, audit.summary()

    def test_with_scheduler_overhead(self):
        audit = _audit(FpsScheduler(), duration=4_000.0,
                       scheduler_overhead=1.0)
        assert audit.consistent, audit.summary()
        assert audit.recomputed.scheduler > 0

    def test_workload_run(self):
        spec = ProcessorSpec.arm8()
        ts = get_workload("cnc").prioritized().with_bcet_ratio(0.5)
        result = simulate(ts, LpfpsScheduler(), spec=spec,
                          execution_model=GaussianModel(),
                          duration=200_000.0, seed=4, record_trace=True)
        audit = audit_energy(result.trace, spec, result.energy, tolerance=1e-4)
        assert audit.consistent, audit.summary()


class TestAuditDetection:
    def test_mismatch_detected(self):
        spec = ProcessorSpec.arm8()
        result = simulate(example_taskset(), FpsScheduler(), spec=spec,
                          duration=400.0, record_trace=True)
        corrupted = EnergyBreakdown(active=result.energy.active * 2)
        audit = audit_energy(result.trace, spec, corrupted)
        assert not audit.consistent
        assert "MISMATCH" in audit.summary()

    def test_recompute_breakdown_categories(self):
        spec = ProcessorSpec.arm8()
        result = simulate(example_taskset(), LpfpsScheduler(), spec=spec,
                          duration=400.0, record_trace=True,
                          on_miss="record")
        recomputed = recompute_energy(result.trace, spec)
        assert recomputed.active > 0
        assert recomputed.ramp > 0  # LPFPS slowed tau2 at t=160
        assert recomputed.sleep == pytest.approx(result.energy.sleep, rel=1e-6)
