"""Engine behaviour for power-down modes (timer, interrupt, threshold)."""

import pytest

from repro.power.frequency import FrequencyGrid
from repro.power.model import PowerModel
from repro.power.processor import ProcessorSpec
from repro.power.transitions import TransitionModel
from repro.schedulers.powerdown import ThresholdPowerDownFps, TimerPowerDownFps
from repro.sim.engine import simulate
from repro.tasks.task import Task, TaskSet


def _one_task():
    return TaskSet([Task(name="t", wcet=10.0, period=100.0, priority=0)],
                   name="one")


def _spec(wakeup_cycles=10.0):
    return ProcessorSpec(
        grid=FrequencyGrid(f_max=100.0, f_min=8.0, step=1.0),
        power=PowerModel(),
        transition=TransitionModel(rho=None),
        wakeup_cycles=wakeup_cycles,
    )


class TestExactTimerPowerDown:
    def test_timeline(self):
        result = simulate(
            _one_task(), TimerPowerDownFps(), spec=_spec(),
            duration=200.0, record_trace=True,
        )
        states = [(s.start, s.end, s.state) for s in result.trace.segments]
        assert states[0] == (0.0, 10.0, "run")
        # Sleep from completion until (100 - 0.1), wake over 0.1 us.
        assert states[1] == (10.0, pytest.approx(99.9), "sleep")
        assert states[2] == (pytest.approx(99.9), pytest.approx(100.0), "wakeup")
        assert states[3][2] == "run"
        assert states[3][0] == pytest.approx(100.0)

    def test_wakeup_timer_leads_release_by_wakeup_delay(self):
        """Paper L14: timer = next release - wakeup delay, so the job
        starts exactly on time."""
        result = simulate(
            _one_task(), TimerPowerDownFps(), spec=_spec(), duration=500.0
        )
        assert result.task_stats["t"].worst_response == pytest.approx(10.0)
        assert not result.missed

    def test_energy_closed_form(self):
        result = simulate(
            _one_task(), TimerPowerDownFps(), spec=_spec(), duration=200.0
        )
        expected = 2 * (10.0 * 1.0 + 89.9 * 0.05 + 0.1 * 1.0)
        assert result.energy.total == pytest.approx(expected, rel=1e-9)
        assert result.sleep_entries == 2

    def test_zero_wakeup_delay(self):
        result = simulate(
            _one_task(), TimerPowerDownFps(), spec=_spec(wakeup_cycles=0.0),
            duration=200.0, record_trace=True,
        )
        assert result.energy.wakeup == 0.0
        assert result.task_stats["t"].worst_response == pytest.approx(10.0)


class TestThresholdPowerDown:
    def test_waits_threshold_before_sleeping(self):
        result = simulate(
            _one_task(), ThresholdPowerDownFps(threshold=30.0), spec=_spec(),
            duration=200.0, record_trace=True,
        )
        states = [(s.start, s.end, s.state) for s in result.trace.segments]
        assert states[0] == (0.0, 10.0, "run")
        assert states[1] == (10.0, 40.0, "idle")       # busy-wait threshold
        assert states[2] == (40.0, 100.0, "sleep")      # no timer -> interrupt
        assert states[3][2] == "wakeup"                  # latency lands on job
        assert states[3] == (100.0, pytest.approx(100.1), "wakeup")

    def test_wakeup_latency_delays_job(self):
        result = simulate(
            _one_task(), ThresholdPowerDownFps(threshold=30.0), spec=_spec(),
            duration=500.0,
        )
        assert result.task_stats["t"].worst_response == pytest.approx(10.1)

    def test_threshold_longer_than_idle_never_sleeps(self):
        result = simulate(
            _one_task(), ThresholdPowerDownFps(threshold=1000.0), spec=_spec(),
            duration=300.0,
        )
        assert result.sleep_entries == 0
        assert result.energy.sleep == 0.0

    def test_costs_more_than_exact_timer(self):
        """Section 2.1's criticism of the conventional approach."""
        naive = simulate(
            _one_task(), ThresholdPowerDownFps(threshold=30.0), spec=_spec(),
            duration=1000.0,
        )
        exact = simulate(
            _one_task(), TimerPowerDownFps(), spec=_spec(), duration=1000.0
        )
        assert exact.average_power < naive.average_power

    def test_invalid_threshold(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            ThresholdPowerDownFps(threshold=-1.0)


class TestSleepPreemptedByWork:
    def test_pending_sleep_cancelled_by_release(self):
        """A release during the threshold wait keeps the processor awake."""
        ts = TaskSet([
            Task(name="a", wcet=10.0, period=50.0, priority=0),
        ])
        result = simulate(
            ts, ThresholdPowerDownFps(threshold=45.0), spec=_spec(),
            duration=200.0, record_trace=True,
        )
        # Idle gap is 40 us < threshold 45: never sleeps.
        assert result.sleep_entries == 0
