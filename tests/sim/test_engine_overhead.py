"""Engine behaviour with modelled scheduler overhead."""

import pytest

from repro.errors import ConfigurationError
from repro.schedulers.fps import FpsScheduler
from repro.sim.engine import Simulator, simulate
from repro.tasks.task import Task, TaskSet
from repro.workloads.example_dac99 import example_taskset


def _one_task():
    return TaskSet([Task(name="t", wcet=10.0, period=100.0, priority=0)])


class TestOverheadAccounting:
    def test_zero_overhead_is_default(self):
        a = simulate(example_taskset(), FpsScheduler(), duration=400.0)
        b = simulate(example_taskset(), FpsScheduler(), duration=400.0,
                     scheduler_overhead=0.0)
        assert a.energy.total == b.energy.total
        assert a.energy.scheduler == 0.0

    def test_overhead_energy_charged(self):
        result = simulate(_one_task(), FpsScheduler(), duration=100.0,
                          scheduler_overhead=1.0)
        # Invocations: INIT at 0 and COMPLETION at 11 (job shifted by the
        # INIT overhead) -> 2 us at full power.
        assert result.energy.scheduler == pytest.approx(2.0)

    def test_overhead_delays_execution(self):
        result = simulate(_one_task(), FpsScheduler(), duration=100.0,
                          scheduler_overhead=2.5, record_trace=True)
        runs = [s for s in result.trace.segments if s.state == "run"]
        assert runs[0].start == pytest.approx(2.5)
        assert runs[0].end == pytest.approx(12.5)
        scheds = [s for s in result.trace.segments if s.state == "sched"]
        assert scheds and scheds[0].duration == pytest.approx(2.5)

    def test_response_time_includes_overhead(self):
        # The dispatching invocation's overhead delays the job by 1 us; the
        # completion-side invocation runs after the job's completion stamp.
        result = simulate(_one_task(), FpsScheduler(), duration=500.0,
                          scheduler_overhead=1.0)
        assert result.task_stats["t"].worst_response == pytest.approx(11.0)

    def test_total_work_unchanged(self):
        plain = simulate(_one_task(), FpsScheduler(), duration=500.0)
        loaded = simulate(_one_task(), FpsScheduler(), duration=500.0,
                          scheduler_overhead=1.0)
        assert loaded.jobs_completed == plain.jobs_completed
        assert loaded.energy.active == pytest.approx(plain.energy.active)

    def test_negative_overhead_rejected(self):
        with pytest.raises(ConfigurationError):
            Simulator(_one_task(), FpsScheduler(), scheduler_overhead=-1.0)


class TestOverheadBreaksTightSets:
    def test_table1_misses_under_overhead(self):
        """The zero-slack Table 1 set cannot absorb any scheduler cost —
        the engine now shows what the RTA predicted (see test_rta.py)."""
        result = simulate(example_taskset(), FpsScheduler(), duration=4000.0,
                          scheduler_overhead=2.0, on_miss="record")
        assert result.missed

    def test_slack_absorbs_small_overhead(self):
        result = simulate(_one_task(), FpsScheduler(), duration=2000.0,
                          scheduler_overhead=2.0)
        assert not result.missed
