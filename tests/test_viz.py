"""Tests for the plain-text visualisation helpers."""

import pytest

from repro.schedulers.fps import FpsScheduler
from repro.sim.engine import simulate
from repro.viz.gantt import render_gantt
from repro.viz.series import render_bars, render_series
from repro.viz.tables import format_cell, render_table
from repro.workloads.example_dac99 import example_taskset


class TestTables:
    def test_alignment_and_headers(self):
        text = render_table(["name", "value"], [("a", 1), ("bbbb", 22.5)])
        lines = text.splitlines()
        assert "name" in lines[0] and "value" in lines[0]
        assert set(lines[1]) <= {"-", " "}
        assert len(lines) == 4

    def test_title(self):
        text = render_table(["x"], [(1,)], title="My table")
        assert text.splitlines()[0] == "My table"

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [(1,)])

    def test_format_cell(self):
        assert format_cell(True) == "yes"
        assert format_cell(1234) == "1,234"
        assert format_cell(1234.0) == "1,234"
        assert format_cell(0.5) == "0.5"
        assert format_cell(0.12345) == "0.1235"
        assert format_cell("txt") == "txt"


class TestSeries:
    def test_bars(self):
        text = render_bars(["a", "b"], [0.5, 1.0], width=10)
        lines = text.splitlines()
        assert "#" * 5 in lines[0]
        assert "#" * 10 in lines[1]

    def test_bars_length_mismatch(self):
        with pytest.raises(ValueError):
            render_bars(["a"], [1.0, 2.0])

    def test_series_renders_legend_and_axes(self):
        text = render_series(
            [1, 2, 3], {"up": [1, 2, 3], "down": [3, 2, 1]}, title="T"
        )
        assert text.splitlines()[0] == "T"
        assert "legend:" in text
        assert "up" in text and "down" in text

    def test_series_length_mismatch(self):
        with pytest.raises(ValueError):
            render_series([1, 2], {"s": [1.0]})

    def test_flat_series_does_not_crash(self):
        assert render_series([1, 2], {"s": [5.0, 5.0]})


class TestGantt:
    def test_figure2a_features(self):
        result = simulate(
            example_taskset(), FpsScheduler(), duration=400.0, record_trace=True
        )
        chart = render_gantt(
            result.trace, ["tau1", "tau2", "tau3"], 0.0, 400.0, width=80
        )
        lines = chart.splitlines()
        assert any(line.strip().startswith("tau1:") for line in lines)
        # Full-speed runs are upper case; idle shows dots on the state row.
        assert "A" in chart and "B" in chart and "C" in chart
        assert "." in chart

    def test_sleep_and_wakeup_markers(self):
        from repro.schedulers.powerdown import TimerPowerDownFps
        from repro.tasks.task import Task, TaskSet

        ts = TaskSet([Task(name="solo", wcet=10.0, period=100.0, priority=0)])
        result = simulate(ts, TimerPowerDownFps(), duration=200.0,
                          record_trace=True)
        chart = render_gantt(result.trace, ["solo"], 0.0, 200.0, width=40)
        assert "_" in chart  # power-down span on the processor row

    def test_slowed_segments_lower_case(self):
        from repro.core.lpfps import LpfpsScheduler
        from repro.power.processor import ProcessorSpec

        result = simulate(
            example_taskset(), LpfpsScheduler(), spec=ProcessorSpec.ideal(),
            duration=400.0, record_trace=True,
        )
        chart = render_gantt(result.trace, ["tau1", "tau2", "tau3"], 0.0, 400.0)
        assert "b" in chart or "c" in chart  # tau2/tau3 run slowed spans

    def test_invalid_range(self):
        result = simulate(
            example_taskset(), FpsScheduler(), duration=400.0, record_trace=True
        )
        with pytest.raises(ValueError):
            render_gantt(result.trace, ["tau1"], 100.0, 100.0)


class TestSpeedProfile:
    def _lpfps_trace(self):
        from repro.core.lpfps import LpfpsScheduler
        from repro.power.processor import ProcessorSpec

        return simulate(
            example_taskset(), LpfpsScheduler(), spec=ProcessorSpec.ideal(),
            duration=400.0, record_trace=True,
        ).trace

    def test_renders_axes_and_marks(self):
        from repro.viz.speedplot import render_speed_profile

        text = render_speed_profile(self._lpfps_trace(), 0.0, 400.0)
        assert "speed 1.0" in text
        assert "0.0 |" in text
        assert "#" in text

    def test_shows_power_down(self):
        from repro.viz.speedplot import render_speed_profile

        text = render_speed_profile(self._lpfps_trace(), 150.0, 250.0, width=50)
        assert "_" in text  # the 180-200 power-down window

    def test_invalid_range(self):
        from repro.viz.speedplot import render_speed_profile

        with pytest.raises(ValueError):
            render_speed_profile(self._lpfps_trace(), 10.0, 10.0)
