"""Tests for LPFPS dual-level (Ishihara-Yasuura) quantisation."""

import pytest

from repro.core.lpfps import LpfpsScheduler
from repro.errors import ConfigurationError
from repro.power.frequency import FrequencyGrid
from repro.power.processor import ProcessorSpec
from repro.sim.engine import simulate
from repro.tasks.generation import GaussianModel, WcetModel
from repro.tasks.task import Task, TaskSet
from repro.workloads.registry import get_workload


class TestAdjacentSpeeds:
    def test_bracketing(self):
        grid = FrequencyGrid(f_max=100.0, f_min=8.0, step=25.0)
        lo, hi = grid.adjacent_speeds(0.45)
        assert lo == pytest.approx(0.33)
        assert hi == pytest.approx(0.58)

    def test_on_level_coincide(self):
        grid = FrequencyGrid(f_max=100.0, f_min=8.0, step=1.0)
        lo, hi = grid.adjacent_speeds(0.5)
        assert lo == hi == pytest.approx(0.5)

    def test_clamped_at_edges(self):
        grid = FrequencyGrid(f_max=100.0, f_min=8.0, step=25.0)
        assert grid.adjacent_speeds(0.01) == (pytest.approx(0.08), pytest.approx(0.08))
        assert grid.adjacent_speeds(1.0)[1] == pytest.approx(1.0)

    def test_quantize_down(self):
        grid = FrequencyGrid(f_max=100.0, f_min=8.0, step=25.0)
        assert grid.quantize_down(40.0) == pytest.approx(33.0)
        assert grid.quantize_down(5.0) == pytest.approx(8.0)
        assert grid.quantize_down(200.0) == pytest.approx(100.0)


class TestDualLevelScheduler:
    def test_conflicts_with_eager_restore(self):
        with pytest.raises(ConfigurationError):
            LpfpsScheduler(dual_level=True, eager_restore=True)
        with pytest.raises(ConfigurationError):
            LpfpsScheduler(dual_level=True, speed_policy="optimal")

    def test_name_suffix(self):
        assert LpfpsScheduler(dual_level=True).name == "LPFPS-dual"

    def test_average_speed_matches_ratio_at_wcet(self):
        """A lone task with ratio 0.45 on a 25 MHz grid runs lo-then-hi and
        completes exactly at its window's end at WCET demand."""
        ts = TaskSet([Task(name="solo", wcet=45_000.0, period=100_000.0,
                           priority=0)])
        spec = ProcessorSpec.arm8().with_grid_step(25.0).with_rho(None)
        result = simulate(ts, LpfpsScheduler(dual_level=True), spec=spec,
                          execution_model=WcetModel(), duration=200_000.0,
                          record_trace=True)
        assert not result.missed
        runs = [s for s in result.trace.segments if s.state == "run"]
        assert runs[0].speed_start == pytest.approx(0.33)
        assert runs[1].speed_end == pytest.approx(0.58)
        completion = result.trace.events_of_kind("completion")[0]
        assert completion.time == pytest.approx(100_000.0, rel=1e-6)

    def test_early_completion_skips_fast_phase(self):
        """Slow-first ordering preserves reclamation: a short job finishes
        during the slow phase and the fast level never runs."""
        ts = TaskSet([Task(name="solo", wcet=45_000.0, period=100_000.0,
                           bcet=9_000.0, priority=0)])

        class Short(WcetModel):
            def sample(self, task, rng):
                return 9_000.0

        spec = ProcessorSpec.arm8().with_grid_step(25.0).with_rho(None)
        result = simulate(ts, LpfpsScheduler(dual_level=True), spec=spec,
                          execution_model=Short(), duration=100_000.0,
                          record_trace=True)
        speeds = {round(s.speed_end, 2) for s in result.trace.segments
                  if s.state == "run"}
        assert speeds == {0.33}

    def test_no_misses_on_workloads_at_wcet(self):
        for app in ("ins", "cnc", "flight_control"):
            ts = get_workload(app).prioritized()
            spec = ProcessorSpec.arm8().with_grid_step(25.0)
            result = simulate(
                ts, LpfpsScheduler(dual_level=True), spec=spec,
                duration=min(ts.hyperperiod, 2_000_000.0),
            )
            assert not result.missed, app

    def test_beats_round_up_on_coarse_grid(self):
        ts = get_workload("ins").prioritized().with_bcet_ratio(0.5)
        spec = ProcessorSpec.arm8().with_grid_step(25.0)
        dual = simulate(ts, LpfpsScheduler(dual_level=True), spec=spec,
                        execution_model=GaussianModel(), seed=1)
        up = simulate(ts, LpfpsScheduler(), spec=spec,
                      execution_model=GaussianModel(), seed=1)
        assert dual.average_power < up.average_power

    def test_continuous_grid_degenerates_to_plain(self):
        ts = get_workload("cnc").prioritized()
        spec = ProcessorSpec.arm8().with_grid_step(None)
        dual = simulate(ts, LpfpsScheduler(dual_level=True), spec=spec,
                        duration=100_000.0)
        plain = simulate(ts, LpfpsScheduler(), spec=spec, duration=100_000.0)
        assert dual.average_power == pytest.approx(plain.average_power, rel=1e-9)
