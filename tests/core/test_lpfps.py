"""Behavioural tests for the LPFPS scheduler (Figure 4)."""

import pytest

from repro.core.lpfps import LpfpsScheduler
from repro.errors import ConfigurationError
from repro.power.processor import ProcessorSpec
from repro.schedulers.fps import FpsScheduler
from repro.sim.engine import simulate
from repro.tasks.generation import UniformModel
from repro.tasks.task import Task, TaskSet
from repro.workloads.example_dac99 import example_taskset


class TestConstruction:
    def test_invalid_policy_rejected(self):
        with pytest.raises(ConfigurationError):
            LpfpsScheduler(speed_policy="magic")

    def test_names_encode_configuration(self):
        assert LpfpsScheduler().name == "LPFPS"
        assert LpfpsScheduler(speed_policy="optimal").name == "LPFPS-opt"
        assert LpfpsScheduler(use_dvs=False).name == "LPFPS-nodvs"
        assert LpfpsScheduler(use_powerdown=False).name == "LPFPS-nopd"


class TestExample2:
    """The paper's worked Example 2 on the ideal processor."""

    @pytest.fixture(autouse=True)
    def _run(self):
        base = example_taskset()
        varied = base.with_tasks([
            t.with_bcet(t.wcet / 2.0) if t.name == "tau2" else t for t in base
        ])

        class HalfTau2(UniformModel):
            def sample(self, task, rng):
                return task.wcet / 2.0 if task.name == "tau2" else task.wcet

        self.result = simulate(
            varied, LpfpsScheduler(), spec=ProcessorSpec.ideal(),
            execution_model=HalfTau2(), duration=400.0, record_trace=True,
        )

    def test_speed_halved_at_160(self):
        seg = self.result.trace.state_at(165.0)
        assert seg.state == "run" and seg.task == "tau2"
        assert seg.speed_start == pytest.approx(0.5)

    def test_completion_at_180(self):
        events = [e for e in self.result.trace.events_of_kind("completion")
                  if e.detail == "tau2#2"]
        assert events and events[0].time == pytest.approx(180.0)

    def test_power_down_with_timer_at_200(self):
        seg = self.result.trace.state_at(190.0)
        assert seg.state == "sleep"
        run_after = self.result.trace.state_at(201.0)
        assert run_after.state == "run" and run_after.task == "tau1"

    def test_no_misses(self):
        assert not self.result.missed


class TestSlowdownGuards:
    def test_never_slows_with_nonempty_run_queue(self):
        """L16 fires only when the run queue is empty."""
        result = simulate(
            example_taskset(), LpfpsScheduler(), spec=ProcessorSpec.ideal(),
            duration=400.0, record_trace=True,
        )
        for seg in result.trace.segments:
            if seg.state == "run" and seg.speed_start < 1.0:
                # Whenever slowed, the window until the end of the segment
                # must have been the task's exclusive slack; we cross-check
                # simply that no other task ran during that span.
                others = [
                    s for s in result.trace.segments
                    if s.state == "run" and s.task != seg.task
                    and s.start < seg.end and s.end > seg.start
                ]
                assert not others

    def test_own_period_bounds_single_task_slowdown(self):
        """A lone task stretches at most to its own next release."""
        ts = TaskSet([Task(name="solo", wcet=20.0, period=100.0, priority=0)])
        result = simulate(
            ts, LpfpsScheduler(), spec=ProcessorSpec.ideal(),
            duration=300.0, record_trace=True,
        )
        assert not result.missed
        runs = [s for s in result.trace.segments if s.state == "run"]
        # Ratio 20/100 = 0.2: the job occupies its whole period.
        assert runs[0].speed_start == pytest.approx(0.2)
        assert runs[0].end == pytest.approx(100.0)

    def test_heavy_high_rate_task_ins_pattern(self):
        """INS's structure: the heavy task gets ~its utilisation as speed."""
        ts = TaskSet([
            Task(name="heavy", wcet=1180.0, period=2500.0, priority=0),
            Task(name="light", wcet=4280.0, period=40000.0, priority=1),
        ])
        result = simulate(
            ts, LpfpsScheduler(), spec=ProcessorSpec.ideal(),
            duration=40000.0, record_trace=True,
        )
        assert not result.missed
        heavy_segments = result.trace.segments_for_task("heavy")
        slowed = [s for s in heavy_segments if s.speed_start < 1.0]
        assert slowed, "the heavy task must get slowed when alone"
        # 1180/2500 = 0.472: stretched across its own period.
        assert min(s.speed_start for s in slowed) == pytest.approx(0.472, abs=0.01)


class TestMechanismFlags:
    def test_no_dvs_never_changes_speed(self):
        result = simulate(
            example_taskset(), LpfpsScheduler(use_dvs=False),
            duration=400.0,
        )
        assert result.speed_changes == 0

    def test_no_powerdown_never_sleeps(self):
        result = simulate(
            example_taskset(), LpfpsScheduler(use_powerdown=False),
            spec=ProcessorSpec.ideal(), duration=400.0,
        )
        assert result.sleep_entries == 0
        assert result.energy.sleep == 0.0

    def test_both_disabled_equals_fps(self):
        lp = simulate(
            example_taskset(),
            LpfpsScheduler(use_dvs=False, use_powerdown=False),
            duration=400.0,
        )
        fps = simulate(example_taskset(), FpsScheduler(), duration=400.0)
        assert lp.average_power == pytest.approx(fps.average_power, rel=1e-12)


class TestRampRestore:
    """L1-L4 with real (non-instant) transitions."""

    def test_slowed_task_restores_to_full_before_dispatch(self):
        result = simulate(
            example_taskset(), LpfpsScheduler(), duration=400.0,
            record_trace=True,
        )
        assert not result.missed
        # After the slow-down of tau2 ending near t=200, tau1 must run at
        # full speed (never at the reduced speed).
        for seg in result.trace.segments:
            if seg.state == "run" and seg.task == "tau1":
                assert seg.speed_end >= seg.speed_start  # only up-ramps
                assert seg.speed_end == pytest.approx(1.0)

    def test_transition_delay_postpones_dispatch(self):
        """The job after a slow-down starts late by the up-ramp time."""
        result = simulate(
            example_taskset(), LpfpsScheduler(), duration=400.0,
            record_trace=True,
        )
        dispatches = [e for e in result.trace.events_of_kind("dispatch")
                      if e.detail == "tau1#4"]
        # tau2 ran at 0.5 until ~196.4; restore to 1.0 takes 0.5/0.07 us.
        assert dispatches[0].time == pytest.approx(200.0 + 0.5 / 0.07 / 2.0, abs=0.2)

    def test_heuristic_ramp_delay_bites_on_zero_slack_set(self):
        """Section 5's caveat, reproduced: Table 1 has zero breakdown slack,
        so the heuristic's unbudgeted return-ramp delay (< 14 us) causes
        misses by at most that delay."""
        result = simulate(
            example_taskset(), LpfpsScheduler(), duration=4000.0,
            on_miss="record",
        )
        assert result.missed
        max_delay = 0.92 / 0.07  # worst transition delay on the ARM8 spec
        for miss in result.deadline_misses:
            # Lateness stays bounded by a couple of return-ramp delays
            # (two slow-downs can land inside one busy period).
            assert miss.completion_time - miss.deadline <= 2 * max_delay

    def test_optimal_policy_has_no_misses_on_zero_slack_set(self):
        """Eq. (2) + the Figure 6(b) pre-arranged up-ramp restores full
        speed exactly at the next arrival: the zero-slack set survives."""
        result = simulate(
            example_taskset(), LpfpsScheduler(speed_policy="optimal"),
            duration=4000.0,
        )
        assert not result.missed

    def test_eager_heuristic_also_safe(self):
        result = simulate(
            example_taskset(), LpfpsScheduler(eager_restore=True),
            duration=4000.0,
        )
        assert not result.missed

    def test_optimal_saves_more_power_than_heuristic(self):
        """r_opt <= r_heu: the optimal baseline speed is lower, so when the
        ramp budget fits, the optimal policy draws less power."""
        heu = simulate(
            example_taskset(), LpfpsScheduler(), duration=4000.0,
            on_miss="record",
        )
        opt = simulate(
            example_taskset(), LpfpsScheduler(speed_policy="optimal"),
            duration=4000.0,
        )
        assert opt.average_power < heu.average_power
