"""Unit and property tests for the speed-ratio math (Eqs. 1-3, Theorem 1)."""

import math

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.speed import (
    heuristic_is_safe,
    heuristic_speed_ratio,
    optimal_speed_ratio,
    slowdown_window,
    work_balance_residual,
)
from repro.errors import ConfigurationError


class TestHeuristic:
    def test_example2(self):
        """At t=160: (20 - 0) / (200 - 160) = 0.5 (paper Example 2)."""
        assert heuristic_speed_ratio(20.0, 40.0) == pytest.approx(0.5)

    def test_zero_remaining(self):
        assert heuristic_speed_ratio(0.0, 40.0) == 0.0

    def test_clamps_at_one(self):
        assert heuristic_speed_ratio(50.0, 40.0) == 1.0

    def test_invalid_inputs(self):
        with pytest.raises(ConfigurationError):
            heuristic_speed_ratio(-1.0, 40.0)
        with pytest.raises(ConfigurationError):
            heuristic_speed_ratio(1.0, 0.0)


class TestOptimal:
    def test_satisfies_work_balance(self):
        """r_opt is a root of Eq. (1) whenever the discriminant is >= 0."""
        for remaining, window in [(50, 100), (30, 120), (500, 2000), (5, 40)]:
            r = optimal_speed_ratio(remaining, window, rho=0.07)
            if 0.0 < r < 1.0:
                residual = work_balance_residual(r, remaining, window, rho=0.07)
                assert residual == pytest.approx(0.0, abs=1e-9)

    def test_infinite_rho_degenerates_to_heuristic(self):
        for rho in (None, math.inf):
            assert optimal_speed_ratio(50.0, 100.0, rho) == pytest.approx(0.5)

    def test_large_rho_approaches_heuristic(self):
        r = optimal_speed_ratio(50.0, 100.0, rho=1e6)
        assert r == pytest.approx(0.5, abs=1e-4)

    def test_below_heuristic_for_finite_rho(self):
        """The ramp contributes work, so the optimal baseline is slower."""
        r_opt = optimal_speed_ratio(50.0, 100.0, rho=0.07)
        assert r_opt < 0.5

    def test_negative_discriminant_returns_zero(self):
        """Small window, small work: every speed overshoots -> run at the
        hardware minimum (paper Figure 7's degenerate corner)."""
        # rho=0.07, window=10: disc < 0 when remaining < ~8.25.
        assert optimal_speed_ratio(5.0, 10.0, rho=0.07) == 0.0

    def test_no_slack_full_speed(self):
        assert optimal_speed_ratio(100.0, 100.0, rho=0.07) == 1.0
        assert optimal_speed_ratio(150.0, 100.0, rho=0.07) == 1.0

    def test_zero_remaining(self):
        assert optimal_speed_ratio(0.0, 100.0, rho=0.07) == 0.0

    def test_invalid_rho(self):
        with pytest.raises(ConfigurationError):
            optimal_speed_ratio(10.0, 100.0, rho=-0.1)


class TestTheorem1:
    """Safeness: r_heu >= r_opt when t_a > t_c and t_a - t_c > C_i - E_i."""

    def test_paper_sweep(self):
        """The exact Figure 7 parameter grid."""
        for window in range(50, 3001, 50):
            for k in range(1, 10):
                r_heu = 0.1 * k
                remaining = r_heu * window
                assert heuristic_is_safe(remaining, window, rho=0.07)

    @given(
        window=st.floats(1.0, 1e6),
        fraction=st.floats(0.0, 1.0, exclude_max=True),
        rho=st.floats(1e-4, 10.0),
    )
    @settings(max_examples=300, deadline=None)
    def test_property_safeness(self, window, fraction, rho):
        remaining = fraction * window
        assume(window > remaining)
        assert heuristic_is_safe(remaining, window, rho)

    def test_domain_enforced(self):
        with pytest.raises(ConfigurationError):
            heuristic_is_safe(100.0, 50.0, rho=0.07)

    @given(
        window=st.floats(10.0, 5000.0),
        fraction=st.floats(0.01, 0.99),
        rho=st.floats(0.001, 1.0),
    )
    @settings(max_examples=200, deadline=None)
    def test_property_optimal_in_unit_interval(self, window, fraction, rho):
        r = optimal_speed_ratio(fraction * window, window, rho)
        assert 0.0 <= r <= 1.0


class TestSlowdownWindow:
    def test_bounded_by_next_arrival(self):
        w = slowdown_window(now=160.0, next_arrival=200.0,
                            own_next_release=240.0, own_deadline=240.0)
        assert w == pytest.approx(40.0)

    def test_bounded_by_own_deadline(self):
        """A lone high-rate task must not stretch past its own deadline even
        when other tasks arrive much later (INS's heavy-task scenario)."""
        w = slowdown_window(now=0.0, next_arrival=40_000.0,
                            own_next_release=2_500.0, own_deadline=2_500.0)
        assert w == pytest.approx(2_500.0)

    def test_no_other_tasks(self):
        w = slowdown_window(now=10.0, next_arrival=None,
                            own_next_release=100.0, own_deadline=100.0)
        assert w == pytest.approx(90.0)

    def test_constrained_deadline_binds(self):
        w = slowdown_window(now=0.0, next_arrival=500.0,
                            own_next_release=1000.0, own_deadline=300.0)
        assert w == pytest.approx(300.0)
