"""Tests for the synthetic task-set families."""

import random

import pytest

from repro.analysis.rta import is_schedulable
from repro.analysis.utilization import is_fully_harmonic
from repro.errors import ConfigurationError
from repro.tasks.priority import rate_monotonic
from repro.workloads.synthetic import (
    harmonic_chain,
    heavy_plus_light,
    uniform_spread,
)


class TestHeavyPlusLight:
    def test_total_utilization(self):
        ts = heavy_plus_light(0.7, rng=random.Random(1))
        assert ts.utilization == pytest.approx(0.7, rel=1e-9)

    def test_heavy_task_dominates_and_is_fastest(self):
        ts = heavy_plus_light(0.7, heavy_share=0.65, rng=random.Random(1))
        heavy = ts.task("heavy")
        assert heavy.utilization == pytest.approx(0.455, rel=1e-9)
        assert heavy.period == min(t.period for t in ts)

    def test_rm_schedulable_at_moderate_load(self):
        for u in (0.3, 0.5, 0.7):
            ts = rate_monotonic(heavy_plus_light(u, rng=random.Random(2)))
            assert is_schedulable(ts), u

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            heavy_plus_light(1.2)
        with pytest.raises(ConfigurationError):
            heavy_plus_light(0.5, heavy_share=1.0)


class TestUniformSpread:
    def test_total_utilization_and_count(self):
        ts = uniform_spread(0.6, n=8, rng=random.Random(3))
        assert len(ts) == 8
        assert ts.utilization == pytest.approx(0.6, rel=1e-9)

    def test_shares_equal(self):
        ts = uniform_spread(0.6, n=6, rng=random.Random(3))
        for t in ts:
            assert t.utilization == pytest.approx(0.1, rel=1e-9)

    def test_invalid_count(self):
        with pytest.raises(ConfigurationError):
            uniform_spread(0.5, n=0)


class TestHarmonicChain:
    def test_harmonic_structure(self):
        ts = harmonic_chain(0.8, n=5)
        assert is_fully_harmonic(ts)
        assert ts.utilization == pytest.approx(0.8, rel=1e-9)

    def test_schedulable_up_to_high_utilization(self):
        ts = rate_monotonic(harmonic_chain(0.95, n=4))
        assert is_schedulable(ts)

    def test_periods_double(self):
        ts = harmonic_chain(0.5, n=4, base_period=1_000.0)
        assert [t.period for t in ts] == [1_000.0, 2_000.0, 4_000.0, 8_000.0]
