"""Workload definitions: Table 2 constraints and paper-stated facts."""

import pytest

from repro.analysis.rta import is_schedulable
from repro.analysis.utilization import is_fully_harmonic
from repro.errors import ConfigurationError
from repro.workloads.bcet_data import BCET_WCET_RATIOS, mean_ratio
from repro.workloads.registry import (
    TABLE2_NAMES,
    available_workloads,
    get_workload,
    table2_workloads,
)


class TestTable2Constraints:
    """The paper's Table 2 rows, verified field by field."""

    def test_avionics(self):
        wl = get_workload("avionics")
        assert wl.task_count == 17
        lo, hi = wl.wcet_range
        assert lo == 1_000.0 and hi == 9_000.0

    def test_ins(self):
        wl = get_workload("ins")
        assert wl.task_count == 6
        lo, hi = wl.wcet_range
        assert lo == 1_180.0 and hi == 100_280.0

    def test_flight_control(self):
        wl = get_workload("flight_control")
        assert wl.task_count == 6
        lo, hi = wl.wcet_range
        assert lo == 10_000.0 and hi == 60_000.0

    def test_cnc(self):
        wl = get_workload("cnc")
        assert wl.task_count == 8
        lo, hi = wl.wcet_range
        assert lo == 35.0 and hi == 720.0

    @pytest.mark.parametrize("name", TABLE2_NAMES)
    def test_all_rm_schedulable(self, name):
        assert is_schedulable(get_workload(name).prioritized())

    @pytest.mark.parametrize("name", TABLE2_NAMES)
    def test_implicit_deadlines(self, name):
        """'Periods are equal to deadlines' — the paper's RM justification."""
        for task in get_workload(name).taskset:
            assert task.deadline == task.period


class TestInsPaperFacts:
    """Section 4's detailed description of INS."""

    def test_total_utilization(self):
        assert get_workload("ins").utilization == pytest.approx(0.736, abs=0.001)

    def test_dominant_task(self):
        ts = get_workload("ins").taskset
        heavy = max(ts, key=lambda t: t.utilization)
        assert heavy.utilization == pytest.approx(0.472, abs=0.001)
        assert heavy.period == 2_500.0

    def test_heavy_task_has_highest_rm_priority(self):
        ts = get_workload("ins").prioritized()
        heavy = max(ts, key=lambda t: t.utilization)
        assert heavy.priority == min(t.priority for t in ts)

    def test_other_utilizations_in_stated_band(self):
        ts = get_workload("ins").taskset
        others = sorted(t.utilization for t in ts)[:-1]
        for u in others:
            assert 0.015 <= u <= 0.11  # paper: "between 0.02 and 0.1"


class TestWorkloadStructure:
    def test_flight_control_harmonic(self):
        assert is_fully_harmonic(get_workload("flight_control").taskset)

    def test_cnc_timescales_comparable_to_transition_delay(self):
        """The paper's point about CNC: WCETs of tens of us vs 10 us ramp."""
        lo, _ = get_workload("cnc").wcet_range
        assert lo < 100.0

    def test_registry_listing(self):
        names = available_workloads()
        assert set(TABLE2_NAMES) <= set(names)
        assert "example" in names

    def test_unknown_workload(self):
        with pytest.raises(ConfigurationError):
            get_workload("doom")

    def test_table2_ordering_matches_paper(self):
        assert [w.name for w in table2_workloads()] == [
            "Avionics", "INS", "Flight control", "CNC"
        ]

    def test_metadata_present(self):
        for wl in table2_workloads():
            assert wl.citation
            assert wl.description
            row = wl.summary_row()
            assert row[1] == wl.task_count


class TestBcetData:
    def test_ratios_in_unit_interval(self):
        for entry in BCET_WCET_RATIOS:
            assert 0.0 < entry.ratio <= 1.0

    def test_spans_wide_range(self):
        """Figure 1's point: variation spans an order of magnitude."""
        ratios = [e.ratio for e in BCET_WCET_RATIOS]
        assert min(ratios) <= 0.2
        assert max(ratios) >= 0.9

    def test_mean_ratio(self):
        assert 0.0 < mean_ratio() < 1.0
