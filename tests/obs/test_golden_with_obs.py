"""Golden matrix with instrumentation ON: obs must be trace-invisible.

The plain golden tests pin the kernel with obs disabled; this module
re-runs the same fixture matrix with an enabled registry at the default
sampling period — the configuration every instrumented campaign uses —
and requires bit-identical digests.  A mismatch means a probe leaked
into simulation state (reordered an event, consumed RNG, perturbed a
float), which is the one thing the observability layer may never do.
"""

from __future__ import annotations

import json

import pytest

from repro.obs.registry import Registry

from ..golden.capture import FIXTURE_PATH, case_id, digest_case, golden_cases

pytestmark = pytest.mark.golden


@pytest.fixture(scope="module")
def fixtures():
    return json.loads(FIXTURE_PATH.read_text())


@pytest.mark.parametrize(
    "scheduler,workload,duration",
    golden_cases(),
    ids=[case_id(s, w) for s, w, _ in golden_cases()],
)
def test_golden_trace_with_obs_enabled(fixtures, scheduler, workload, duration):
    expected = fixtures[case_id(scheduler, workload)]
    actual = digest_case(scheduler, workload, duration, obs=Registry())
    assert actual == expected, (
        f"obs instrumentation changed the trace for {scheduler} on {workload}"
    )
