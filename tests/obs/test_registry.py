"""Registry behaviour: mutators, span nesting, threading, installation."""

import threading

import pytest

from repro.errors import ConfigurationError
from repro.obs.registry import (
    DEFAULT_SAMPLE,
    DISABLED,
    Registry,
    current,
    install,
    installed,
)
from repro.obs.schema import validate_bench_metrics


class TestConstruction:
    def test_sample_zero_means_default(self):
        assert Registry().sample == DEFAULT_SAMPLE
        assert Registry(sample=0).sample == DEFAULT_SAMPLE

    def test_explicit_sample_passes_through(self):
        assert Registry(sample=1).sample == 1
        assert Registry(sample=7).sample == 7

    def test_negative_sample_rejected(self):
        with pytest.raises(ConfigurationError, match="sample"):
            Registry(sample=-1)


class TestMutators:
    def test_count_gauge_observe(self):
        r = Registry()
        r.count("c")
        r.count("c", 4)
        r.gauge("g", 2.5, units="x")
        r.observe("h", 0.25, edges=(1.0,))
        assert r.counter_value("c") == 5
        assert r.gauge_value("g") == 2.5
        snap = r.snapshot()
        assert snap["histograms"]["h"]["count"] == 1
        assert snap["histograms"]["h"]["buckets"] == [1, 0]

    def test_unknown_names_read_as_zero(self):
        r = Registry()
        assert r.counter_value("nope") == 0
        assert r.gauge_value("nope") == 0.0
        assert r.span_stat("nope") is None

    def test_span_add_batched_flush(self):
        r = Registry()
        r.span_add("loop", 2.0, count=100, self_s=1.5)
        stat = r.span_stat("loop")
        assert stat.count == 100
        assert stat.total_s == pytest.approx(2.0)
        assert stat.self_s == pytest.approx(1.5)

    def test_disabled_registry_drops_everything(self):
        assert DISABLED.enabled is False
        DISABLED.count("c")
        DISABLED.gauge("g", 1.0)
        DISABLED.observe("h", 1.0)
        DISABLED.span_add("s", 1.0)
        with DISABLED.span("s"):
            pass
        assert DISABLED.counter_value("c") == 0
        assert DISABLED.snapshot() == {
            "counters": {},
            "gauges": {},
            "histograms": {},
            "spans": {},
        }


class TestSpanNesting:
    def test_child_time_excluded_from_parent_self(self):
        r = Registry()
        with r.span("outer"):
            with r.span("inner"):
                pass
        outer, inner = r.span_stat("outer"), r.span_stat("inner")
        assert outer.count == inner.count == 1
        # outer's inclusive time covers inner entirely; its self time
        # excludes it, so the two self-times tile outer's total.
        assert outer.total_s >= inner.total_s
        assert outer.self_s + inner.total_s == pytest.approx(outer.total_s)

    def test_siblings_both_subtracted(self):
        r = Registry()
        with r.span("outer"):
            with r.span("a"):
                pass
            with r.span("b"):
                pass
        outer = r.span_stat("outer")
        child = r.span_stat("a").total_s + r.span_stat("b").total_s
        assert outer.self_s == pytest.approx(outer.total_s - child)

    def test_span_names_sorted(self):
        r = Registry()
        for name in ("b", "a", "c"):
            r.span_add(name, 0.0)
        assert r.span_names() == ["a", "b", "c"]


class TestThreadSafety:
    def test_concurrent_counts_are_exact(self):
        r = Registry()
        threads = [
            threading.Thread(
                target=lambda: [r.count("hits") for _ in range(2000)]
            )
            for _ in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert r.counter_value("hits") == 16000

    def test_concurrent_spans_do_not_corrupt_stacks(self):
        r = Registry()

        def work(tag):
            for _ in range(200):
                with r.span(f"outer.{tag}"):
                    with r.span(f"inner.{tag}"):
                        pass

        threads = [
            threading.Thread(target=work, args=(i,)) for i in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        for i in range(4):
            outer = r.span_stat(f"outer.{i}")
            inner = r.span_stat(f"inner.{i}")
            assert outer.count == inner.count == 200
            assert outer.total_s >= inner.total_s


class TestInstallation:
    def test_current_defaults_to_disabled(self):
        install(None)
        assert current() is DISABLED

    def test_install_and_clear(self):
        r = Registry()
        install(r)
        try:
            assert current() is r
        finally:
            install(None)
        assert current() is DISABLED

    def test_installed_context_restores_previous(self):
        outer_reg, inner_reg = Registry(), Registry()
        install(outer_reg)
        try:
            with installed(inner_reg) as got:
                assert got is inner_reg
                assert current() is inner_reg
            assert current() is outer_reg
        finally:
            install(None)

    def test_installation_is_thread_local(self):
        r = Registry()
        seen = {}

        def probe():
            seen["other"] = current()

        with installed(r):
            t = threading.Thread(target=probe)
            t.start()
            t.join()
            assert current() is r
        assert seen["other"] is DISABLED


class TestExport:
    def test_to_bench_metrics_validates(self):
        r = Registry()
        r.count("c", 2)
        r.gauge("g", 1.0)
        r.observe("h", 0.5, edges=(1.0,))
        with r.span("s"):
            pass
        payload = r.to_bench_metrics(benchmark="unit", test="case")
        assert validate_bench_metrics(payload) == []
        assert payload["benchmark"] == "unit"
        names = {
            m["name"] for m in payload["tests"]["case"]["metrics"]
        }
        assert {"c", "g", "h_count", "s_total_s"} <= names

    def test_test_record_has_wall_time(self):
        record = Registry().test_record()
        assert record["wall_time_s"] >= 0.0
        assert record["metrics"] == []
