"""``lpfps profile``: exit codes, phase-table accuracy, JSON artefact."""

import json

import pytest

from repro.cli import build_parser, main
from repro.obs.profiler import profile_run
from repro.obs.schema import validate_bench_metrics


class TestParser:
    def test_profile_arguments(self):
        args = build_parser().parse_args(
            ["profile", "lpfps", "cnc", "--duration", "9600", "--seed", "3"]
        )
        assert args.command == "profile"
        assert args.scheduler == "lpfps"
        assert args.workload == "cnc"
        assert args.duration == 9600.0
        assert args.seed == 3

    def test_rejects_unknown_scheduler(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["profile", "nope", "cnc"])


class TestProfileRun:
    @pytest.fixture(scope="class")
    def report(self):
        return profile_run("lpfps", "cnc", duration=50_000.0)

    def test_phase_self_times_tile_the_wall_time(self, report):
        # The acceptance bar: phase times must sum to within 5% of the
        # run's wall time (coverage counts kernel.run self-time — setup,
        # finalisation, loop glue — as attributed).
        assert report.coverage == pytest.approx(1.0, abs=0.05)

    def test_render_lists_phases_and_energy(self, report):
        text = report.render()
        assert "scheduler dispatch" in text
        assert "boundary scan" in text
        assert "energy bucket" in text
        assert "TOTAL (wall)" in text
        assert "decisions:" in text

    def test_payload_validates(self, report):
        payload = report.to_payload()
        assert validate_bench_metrics(payload) == []
        assert "lpfps@cnc" in payload["tests"]

    def test_workload_alias_resolves(self):
        report = profile_run("fps", "example_dac99", duration=400.0)
        assert report.workload == "example"

    def test_unknown_workload_raises_repro_error(self):
        from repro.errors import ReproError

        with pytest.raises(ReproError):
            profile_run("fps", "not-a-workload", duration=400.0)


class TestMain:
    def test_profile_exits_zero_and_writes_json(self, tmp_path, capsys):
        code = main(
            [
                "profile",
                "lpfps",
                "example_dac99",
                "--duration",
                "2000",
                "--out-dir",
                str(tmp_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "profile: scheduler=lpfps workload=example" in out
        path = tmp_path / "profile_lpfps_example.json"
        assert path.exists()
        payload = json.loads(path.read_text())
        assert payload["schema"] == "bench-metrics/v1"
        assert validate_bench_metrics(payload) == []
        metrics = {
            m["name"]: m["value"]
            for m in payload["tests"]["lpfps@example"]["metrics"]
        }
        assert metrics["scheduler"] == "lpfps"
        assert metrics["kernel.run_count"] == 1
        assert metrics["kernel.iterations"] > 0

    def test_unknown_workload_exits_one(self, tmp_path, capsys):
        code = main(
            ["profile", "fps", "not-a-workload", "--out-dir", str(tmp_path)]
        )
        assert code == 1
        assert "error:" in capsys.readouterr().err
