"""Kernel instrumentation: populated metrics, zero behavioural drift.

The engine's obs hooks are sampled wall-clock probes — they must never
touch simulation state.  These tests pin that: a run with obs enabled
(at any sampling period) produces a bit-identical trace digest to a run
without, while the registry fills with the expected spans and counters.
"""

import pytest

from repro.obs.registry import Registry
from repro.schedulers.registry import make_scheduler
from repro.sim.engine import simulate
from repro.sim.recording import digest_result
from repro.tasks.generation import GaussianModel
from repro.workloads.registry import get_workload

#: Small cells covering dispatch-heavy (example) and sleep/DVS-heavy
#: (cnc under lpfps) kernel paths.
CELLS = (
    ("fps", "example", 400.0),
    ("lpfps", "cnc", 25_000.0),
)


def _run(scheduler, workload, duration, obs=None):
    taskset = get_workload(workload).prioritized().with_bcet_ratio(0.5)
    return simulate(
        taskset,
        make_scheduler(scheduler),
        execution_model=GaussianModel(),
        duration=duration,
        seed=1,
        on_miss="record",
        record_trace=True,
        obs=obs,
    )


@pytest.mark.parametrize("scheduler,workload,duration", CELLS)
@pytest.mark.parametrize("sample", [1, 4, 64])
def test_obs_never_changes_the_simulation(scheduler, workload, duration, sample):
    baseline = digest_result(_run(scheduler, workload, duration))
    observed = digest_result(
        _run(scheduler, workload, duration, obs=Registry(sample=sample))
    )
    assert observed == baseline


@pytest.mark.parametrize("scheduler,workload,duration", CELLS)
def test_disabled_registry_records_nothing(scheduler, workload, duration):
    registry = Registry(enabled=False)
    _run(scheduler, workload, duration, obs=registry)
    assert registry.snapshot() == {
        "counters": {},
        "gauges": {},
        "histograms": {},
        "spans": {},
    }


class TestExactInstrumentation:
    """At sample=1 every iteration is timed, so counts are exact."""

    @pytest.fixture(scope="class")
    def registry(self):
        registry = Registry(sample=1)
        _run("lpfps", "cnc", 25_000.0, obs=registry)
        return registry

    def test_core_spans_present(self, registry):
        names = set(registry.span_names())
        assert {
            "kernel.run",
            "kernel.boundary_scan",
            "kernel.advance",
            "kernel.boundary_handle",
            "kernel.dispatch",
            "kernel.release_scan",
        } <= names

    def test_every_iteration_was_sampled(self, registry):
        iters = registry.counter_value("kernel.iterations")
        assert iters > 0
        assert registry.counter_value("kernel.sampled_iterations") == iters
        assert registry.gauge_value("kernel.sample_period") == 1.0

    def test_one_init_invocation(self, registry):
        # INIT happens once, outside the loop; the init-snapshot
        # descaling must keep it at exactly 1 (not scaled by the
        # sampling factor).
        assert registry.counter_value("sched.invocations.init") == 1

    def test_decisions_sum_to_invocations(self, registry):
        decisions = sum(
            registry.counter_value(f"sched.decisions.{kind}")
            for kind in ("sleep", "speed", "no_change", "dispatch", "idle")
        )
        invocations = sum(
            registry.counter_value(f"sched.invocations.{event}")
            for event in (
                "init", "release", "completion", "ramp_done", "wake", "tick"
            )
        )
        assert decisions == invocations > 0

    def test_boundary_reasons_cover_iterations(self, registry):
        reasons = {
            name: value
            for name, value in registry.snapshot()["counters"].items()
            if name.startswith("kernel.boundary.")
        }
        assert reasons
        assert (
            sum(reasons.values())
            == registry.counter_value("kernel.iterations")
        )

    def test_lpfps_on_cnc_sleeps(self, registry):
        # The paper's headline behaviour: LPFPS powers the CNC core down.
        assert registry.counter_value("sched.decisions.sleep") > 0
        assert registry.span_stat("kernel.sleep") is not None

    def test_release_scans_nested_under_dispatch(self, registry):
        dispatch = registry.span_stat("kernel.dispatch")
        release = registry.span_stat("kernel.release_scan")
        # Self-time excludes the nested release scans, so it can never
        # exceed the inclusive time.
        assert dispatch.self_s <= dispatch.total_s
        assert release.total_s <= dispatch.total_s + 1e-9


class TestSampledInstrumentation:
    def test_init_snapshot_survives_scaling(self):
        registry = Registry(sample=16)
        _run("lpfps", "cnc", 25_000.0, obs=registry)
        assert registry.counter_value("sched.invocations.init") == 1

    def test_sampled_counts_track_exact_within_noise(self):
        exact = Registry(sample=1)
        _run("lpfps", "cnc", 25_000.0, obs=exact)
        sampled = Registry(sample=8)
        _run("lpfps", "cnc", 25_000.0, obs=sampled)
        # Iteration counts are derived, not sampled — always exact.
        assert sampled.counter_value("kernel.iterations") == exact.counter_value(
            "kernel.iterations"
        )
        # Scaled-up decision estimates are coarse on a short run (the
        # 1-in-8 placement aliases with the workload's periodic
        # structure), but must stay the right order of magnitude.
        for kind in ("dispatch", "sleep"):
            name = f"sched.decisions.{kind}"
            truth = exact.counter_value(name)
            estimate = sampled.counter_value(name)
            assert truth / 4 <= estimate <= truth * 4

    def test_obs_none_is_the_default(self):
        # No registry, no instrumentation attributes consulted — the
        # plain call path must simply work.
        result = _run("fps", "example", 400.0)
        assert result.jobs_completed > 0
