"""Unit tests for the raw observability instruments."""

import pytest

from repro.errors import ConfigurationError
from repro.obs.instruments import (
    DEFAULT_EDGES,
    Counter,
    Gauge,
    Histogram,
    SpanStat,
)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        c = Counter("hits")
        assert c.value == 0
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_metrics_shape(self):
        c = Counter("hits")
        c.inc(3)
        assert c.metrics() == [{"name": "hits", "value": 3, "units": ""}]


class TestGauge:
    def test_last_write_wins(self):
        g = Gauge("workers")
        g.set(4.0)
        g.set(2.0)
        assert g.value == 2.0

    def test_metrics_carry_units(self):
        g = Gauge("wall", units="s")
        g.set(1.5)
        assert g.metrics() == [{"name": "wall", "value": 1.5, "units": "s"}]


class TestHistogram:
    def test_default_edges_are_strictly_increasing(self):
        assert all(a < b for a, b in zip(DEFAULT_EDGES, DEFAULT_EDGES[1:]))

    def test_rejects_empty_edges(self):
        with pytest.raises(ConfigurationError, match="at least one"):
            Histogram("h", edges=())

    def test_rejects_non_increasing_edges(self):
        with pytest.raises(ConfigurationError, match="strictly increasing"):
            Histogram("h", edges=(1.0, 1.0, 2.0))

    def test_observations_land_in_the_right_bucket(self):
        h = Histogram("h", edges=(1.0, 10.0))
        h.observe(0.5)   # <= 1.0
        h.observe(1.0)   # boundary is inclusive
        h.observe(5.0)   # <= 10.0
        h.observe(99.0)  # overflow
        assert h.buckets == [2, 1, 1]
        assert h.count == 4
        assert h.total == pytest.approx(105.5)
        assert h.mean == pytest.approx(105.5 / 4)

    def test_empty_histogram_mean_is_zero(self):
        assert Histogram("h", edges=(1.0,)).mean == 0.0

    def test_metrics_enumerate_every_bucket(self):
        h = Histogram("lat", edges=(1.0, 10.0), units="ms")
        h.observe(2.0)
        names = [m["name"] for m in h.metrics()]
        assert names == [
            "lat_count",
            "lat_total",
            "lat_mean",
            "lat_le_1",
            "lat_le_10",
            "lat_overflow",
        ]
        by_name = {m["name"]: m for m in h.metrics()}
        assert by_name["lat_total"]["units"] == "ms"
        assert by_name["lat_le_10"]["value"] == 1


class TestSpanStat:
    def test_accumulates_and_tracks_max(self):
        s = SpanStat("phase")
        s.add(0.5, 0.4)
        s.add(0.2, 0.2, count=3)
        assert s.count == 4
        assert s.total_s == pytest.approx(0.7)
        assert s.self_s == pytest.approx(0.6)
        assert s.max_s == pytest.approx(0.5)

    def test_metrics_shape(self):
        s = SpanStat("phase")
        s.add(1.0, 0.75)
        by_name = {m["name"]: m["value"] for m in s.metrics()}
        assert by_name == {
            "phase_count": 1,
            "phase_total_s": 1.0,
            "phase_self_s": 0.75,
            "phase_max_s": 1.0,
        }
